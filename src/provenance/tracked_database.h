#ifndef PROVDB_PROVENANCE_TRACKED_DATABASE_H_
#define PROVDB_PROVENANCE_TRACKED_DATABASE_H_

#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "crypto/pki.h"
#include "provenance/bundle.h"
#include "provenance/chain.h"
#include "provenance/checksum.h"
#include "provenance/provenance_store.h"
#include "provenance/record.h"
#include "provenance/subtree_hasher.h"
#include "storage/tree_store.h"

namespace provdb::provenance {

/// Which of the paper's two compound-hashing strategies to use (§4.3).
enum class HashingMode {
  kBasic,       // rehash the whole affected tree on every operation
  kEconomical,  // memoize node hashes; rehash only changed paths
};

std::string_view HashingModeName(HashingMode mode);

/// Construction-time configuration of a TrackedDatabase.
struct TrackedDatabaseOptions {
  crypto::HashAlgorithm hash_algorithm = crypto::HashAlgorithm::kSha1;
  HashingMode hashing_mode = HashingMode::kEconomical;

  /// When true, provenance records of atomic outputs also carry the new
  /// value (for display; verification never needs it).
  bool store_value_snapshots = false;
};

/// Phase timing and work counters for tracked operations — the metrics
/// behind Figures 7, 8, and 10.
struct OperationMetrics {
  double hash_seconds = 0;   // subtree hashing (input + output states)
  double sign_seconds = 0;   // payload building + RSA signing ("encrypting")
  double store_seconds = 0;  // inserting records into the provenance store
  uint64_t checksums = 0;    // records (and thus signatures) emitted
  uint64_t nodes_hashed = 0; // node-hash computations performed

  double total_seconds() const {
    return hash_seconds + sign_seconds + store_seconds;
  }
  void Accumulate(const OperationMetrics& other);
};

/// The system under evaluation (§5.1): a back-end database (TreeStore)
/// instrumented so every operation emits provenance records with integrity
/// checksums into a provenance database (ProvenanceStore).
///
/// Two usage modes:
///  * **Primitive operations** — Insert / Update / Delete / Aggregate emit
///    their records immediately, including the inherited records of every
///    ancestor (§4.2).
///  * **Complex operations** (§4.4) — Begin/EndComplexOperation brackets a
///    batch of primitives; one record per surviving touched object (and
///    its ancestors) is emitted at End, documenting the object's
///    before/after states across the whole batch.
///
/// All tracked mutation is attributed to a crypto::Participant whose key
/// signs the checksums.
class TrackedDatabase {
 public:
  explicit TrackedDatabase(TrackedDatabaseOptions options = {});

  // -- Bootstrap -------------------------------------------------------

  /// Direct, untracked access to the back-end tree for loading an initial
  /// database state ("before provenance collection begins", as in the
  /// §5 experiments). Must not be used after the first tracked operation;
  /// doing so desynchronizes the hash caches.
  storage::TreeStore& bootstrap_tree();

  // -- Tracked primitive operations -------------------------------------

  /// Insert(A, val[, parent]) with provenance (§2/§4.1). Returns the new
  /// object id. Inside a complex operation the record is deferred to End.
  Result<storage::ObjectId> Insert(const crypto::Participant& p,
                                   const storage::Value& value,
                                   storage::ObjectId parent =
                                       storage::kInvalidObjectId);

  /// Update(A, val') with provenance.
  Status Update(const crypto::Participant& p, storage::ObjectId id,
                const storage::Value& value);

  /// Delete(A) (leaf only). Emits inherited records for A's ancestors; A
  /// itself gets none (§2.1: a deleted object's provenance is no longer
  /// relevant).
  Status Delete(const crypto::Participant& p, storage::ObjectId id);

  /// Aggregate({A_1..A_n}, B): deep-copies the inputs under a fresh root B
  /// and emits the aggregation record with the non-linear checksum (§3).
  /// Not allowed inside a complex operation.
  Result<storage::ObjectId> Aggregate(
      const crypto::Participant& p,
      const std::vector<storage::ObjectId>& inputs,
      const storage::Value& root_value);

  // -- Complex operations (§4.4) ----------------------------------------

  /// Starts a complex operation attributed to `p`. Primitives until
  /// EndComplexOperation must pass the same participant.
  Status BeginComplexOperation(const crypto::Participant& p);

  /// Emits the batched records (one per surviving touched object and
  /// ancestor) and closes the operation.
  Status EndComplexOperation();

  bool in_complex_operation() const { return complex_ != nullptr; }

  // -- Introspection -----------------------------------------------------

  const storage::TreeStore& tree() const { return tree_; }
  const ProvenanceStore& provenance() const { return store_; }

  /// For the attack simulator and tests only.
  ProvenanceStore* mutable_provenance() { return &store_; }

  // -- Durability (WAL) --------------------------------------------------

  /// Attaches a write-ahead log: every provenance record emitted from now
  /// on is appended (and, under WalOptions::sync_every_append, fsync'd)
  /// to `wal` *before* it is applied to the in-memory store. Records
  /// already in the store are checkpointed into the WAL first, so
  /// recovery replays the complete store. `wal` is borrowed and must
  /// outlive this database (or be detached via mutable_provenance()).
  Status AttachWal(storage::WalWriter* wal);

  /// Forces every record emitted so far onto stable storage. A record is
  /// only guaranteed to survive a crash once a Sync covering it returned
  /// OK.
  Status SyncWal();

  /// Seals a signed checkpoint of the provenance store into the attached
  /// WAL's directory and garbage-collects the segments it covers
  /// (DESIGN.md §13): the WAL is rolled, a snapshot sealed with `signer`
  /// (as participant `sealer_id`) at the rolled horizon, stale
  /// checkpoints removed, and covered segments deleted. Recovery from
  /// that directory then needs the checkpoint plus the WAL suffix only.
  /// A no-op when nothing was appended since the last checkpoint;
  /// kFailedPrecondition without an attached WAL.
  Status CheckpointWal(const crypto::Signer& signer, uint64_t sealer_id,
                       crypto::HashAlgorithm alg =
                           crypto::HashAlgorithm::kSha1);

  const TrackedDatabaseOptions& options() const { return options_; }

  /// Current compound hash of subtree(id) under the configured algorithm.
  Result<crypto::Digest> CurrentHash(storage::ObjectId id);

  /// Packages subtree(id) and its provenance object for a data recipient.
  Result<RecipientBundle> ExportForRecipient(storage::ObjectId id);

  /// Fine-grained export: additionally ships the own chains of every
  /// object inside subtree(id), so the recipient sees cell-level history
  /// (who amended which cell) rather than only the subject's inherited
  /// records. Larger, but verifies with the same ProvenanceVerifier.
  Result<RecipientBundle> ExportForRecipientDeep(storage::ObjectId id);

  /// Metrics of the most recent tracked operation (a whole complex
  /// operation counts as one).
  const OperationMetrics& last_op_metrics() const { return last_metrics_; }

  /// Metrics accumulated since construction / ResetMetrics.
  const OperationMetrics& cumulative_metrics() const {
    return cumulative_metrics_;
  }
  void ResetMetrics();

 private:
  struct ComplexState {
    const crypto::Participant* participant;
    /// Pre-operation state hashes, captured at first touch.
    std::unordered_map<storage::ObjectId, crypto::Digest> pre_hashes;
    /// Basic mode: whole-tree hash pools captured at the first touch of
    /// each tree root (one "input walk" per tree, as §4.3 describes).
    std::unordered_map<storage::ObjectId, crypto::Digest> basic_pre_pool;
    std::set<storage::ObjectId> basic_pre_walked_roots;
    /// Objects whose subtree changed (directly or via descendants).
    std::set<storage::ObjectId> touched;
    /// Objects directly targeted by a primitive (as opposed to ancestors
    /// that only inherit).
    std::set<storage::ObjectId> direct;
    std::set<storage::ObjectId> inserted;
    std::set<storage::ObjectId> deleted;
    OperationMetrics metrics;
  };

  /// Current hash of subtree(id), honoring the hashing mode; adds elapsed
  /// time and node-hash work to `metrics`.
  Result<crypto::Digest> ComputeHash(storage::ObjectId id,
                                     OperationMetrics* metrics);

  /// One post-order walk computing the digest of *every* node under
  /// `root` (the Basic strategy's single-walk form).
  Status ComputeAllHashes(
      storage::ObjectId root,
      std::unordered_map<storage::ObjectId, crypto::Digest>* out,
      OperationMetrics* metrics);

  /// Notifies the economical cache of a mutation at `id`.
  void InvalidatePath(storage::ObjectId id);

  /// Builds, signs, and stores one record; updates the chain tail.
  /// For kInsert, `pre_hash` must be null; for kUpdate it may be null only
  /// for objects predating provenance collection (bootstrap data).
  Status EmitRecord(const crypto::Participant& p, OperationType op,
                    bool inherited, storage::ObjectId id,
                    const crypto::Digest* pre_hash,
                    const crypto::Digest& post_hash,
                    const storage::Value* snapshot,
                    OperationMetrics* metrics);

  /// Captures pre-hashes of `id` and its ancestors into the complex batch
  /// if not yet captured. Must run before the mutation.
  Status CapturePreHashes(storage::ObjectId id);

  void FinishOperation(OperationMetrics metrics);

  TrackedDatabaseOptions options_;
  storage::TreeStore tree_;
  ProvenanceStore store_;
  ChecksumEngine engine_;
  SubtreeHasher basic_hasher_;
  EconomicalHasher economical_hasher_;
  LocalChainState chains_;
  std::unique_ptr<ComplexState> complex_;
  OperationMetrics last_metrics_;
  OperationMetrics cumulative_metrics_;
  bool any_tracked_op_ = false;
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_TRACKED_DATABASE_H_
