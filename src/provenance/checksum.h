#ifndef PROVDB_PROVENANCE_CHECKSUM_H_
#define PROVDB_PROVENANCE_CHECKSUM_H_

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/digest.h"
#include "crypto/hash.h"
#include "crypto/signer.h"
#include "observability/metrics.h"

namespace provdb::provenance {

/// Builds the byte strings that participants sign — the checksum payloads
/// of §3, extended to compound objects in §4.3:
///
///   Insert:    C = S_SKp( 0 | h(A,val) | 0 )
///   Update:    C = S_SKp( h(A,val) | h(A,val') | C_prev )
///   Aggregate: C = S_SKp( h(h(A_1,v_1)|...|h(A_n,v_n)) | h(B,val)
///                         | C_1 | ... | C_n )
///
/// `|` is concatenation. The paper's literal `0` fields (insert) are
/// encoded as a digest-width zero block for the input slot and an empty
/// previous-checksum slot; every field is fixed-width for its position
/// (digests are algorithm-width, checksums are signature-width), so the
/// encoding is injective per operation type. For compound objects the
/// same formulas apply with h(subtree(A)) in place of h(A, val).
///
/// An update whose object predates provenance collection (bootstrap data)
/// has no C_prev; its slot is empty, which matches starting the chain at
/// the collection epoch.
class ChecksumEngine {
 public:
  explicit ChecksumEngine(
      crypto::HashAlgorithm alg = crypto::HashAlgorithm::kSha1);

  crypto::HashAlgorithm algorithm() const { return alg_; }

  /// Payload for an insert producing output hash `out_hash`.
  Bytes BuildInsertPayload(const crypto::Digest& out_hash) const;

  /// Payload for an update: previous state `in_hash`, new state `out_hash`,
  /// previous checksum `prev_checksum` (may be empty at the collection
  /// epoch).
  Bytes BuildUpdatePayload(const crypto::Digest& in_hash,
                           const crypto::Digest& out_hash,
                           ByteView prev_checksum) const;

  /// Payload for an aggregation. `input_hashes` must follow the global
  /// total order (ascending object id); `prev_checksums[i]` is the latest
  /// checksum of input i (empty entries allowed for untracked inputs).
  Bytes BuildAggregatePayload(
      const std::vector<crypto::Digest>& input_hashes,
      const crypto::Digest& out_hash,
      const std::vector<Bytes>& prev_checksums) const;

  /// Signs a payload with the acting participant's signer, producing the
  /// checksum stored in the provenance record.
  Result<Bytes> SignPayload(const crypto::Signer& signer,
                            ByteView payload) const;

 private:
  crypto::HashAlgorithm alg_;

  // Per-op-type payload builds and signing cost (docs/OBSERVABILITY.md).
  // In the protocol every built payload is signed exactly once, so these
  // counters double as per-op-type sign counts.
  observability::Counter* payload_insert_;
  observability::Counter* payload_update_;
  observability::Counter* payload_aggregate_;
  observability::Counter* sign_count_;
  observability::Histogram* sign_latency_;
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_CHECKSUM_H_
