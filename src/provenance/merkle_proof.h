#ifndef PROVDB_PROVENANCE_MERKLE_PROOF_H_
#define PROVDB_PROVENANCE_MERKLE_PROOF_H_

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/digest.h"
#include "crypto/hash.h"
#include "storage/tree_store.h"
#include "storage/value.h"

namespace provdb::provenance {

/// Inclusion proofs over the compound-object hash (§4.3). Because
/// h(subtree(A)) is a Merkle-style hash, a prover holding the full object
/// can convince a verifier who knows only the root digest that a specific
/// descendant (e.g. one cell) has a specific state — without shipping the
/// rest of the object. This composes with provenance verification: the
/// recipient first verifies the provenance object to trust the root
/// digest, then checks individual fine-grained facts against it.
///
/// A proof is the path from the target to the root. Each step carries the
/// parent's identity/value and the hashes of the target's siblings, split
/// around the target's position (children are ordered by ascending id, so
/// the position is part of what is proven).
struct ProofStep {
  storage::ObjectId parent_id = storage::kInvalidObjectId;
  storage::Value parent_value;
  /// Hashes of the children preceding / following the carried child.
  std::vector<crypto::Digest> left_siblings;
  std::vector<crypto::Digest> right_siblings;
};

/// Proof that `subject` (with subtree hash `subject_hash`) is part of the
/// compound object whose recursive hash the verifier trusts.
struct InclusionProof {
  storage::ObjectId subject = storage::kInvalidObjectId;
  /// h(subtree(subject)) — what the proof anchors to the root.
  crypto::Digest subject_hash;
  /// Steps from the subject's parent up to (and including) the root.
  std::vector<ProofStep> steps;

  /// Total sibling hashes carried (the dominant size factor; wide nodes
  /// such as a 4000-row table contribute their full fan-out).
  size_t SiblingCount() const;

  Bytes Serialize() const;
  static Result<InclusionProof> Deserialize(ByteView data);
};

/// Builds the inclusion proof for `target` within subtree(`root`).
/// `target` may be any descendant of `root` (or `root` itself, yielding an
/// empty-step proof). O(path length + total fan-out along the path).
Result<InclusionProof> BuildInclusionProof(const storage::TreeStore& tree,
                                           storage::ObjectId target,
                                           storage::ObjectId root,
                                           crypto::HashAlgorithm alg);

/// Recomputes the root digest implied by `proof` and compares it against
/// `trusted_root_hash`. OK iff they match, i.e. iff an object with id
/// `proof.subject` and subtree hash `proof.subject_hash` occurs at the
/// proven position inside the trusted compound object.
Status VerifyInclusionProof(const InclusionProof& proof,
                            const crypto::Digest& trusted_root_hash,
                            crypto::HashAlgorithm alg);

/// Convenience: proves a *leaf* value (e.g. one cell). Builds the leaf
/// hash from (id, value) and delegates to VerifyInclusionProof.
Status VerifyLeafInclusion(const InclusionProof& proof,
                           const storage::Value& leaf_value,
                           const crypto::Digest& trusted_root_hash,
                           crypto::HashAlgorithm alg);

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_MERKLE_PROOF_H_
