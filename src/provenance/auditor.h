#ifndef PROVDB_PROVENANCE_AUDITOR_H_
#define PROVDB_PROVENANCE_AUDITOR_H_

#include <memory>

#include <map>
#include <vector>

#include "common/thread_pool.h"
#include "crypto/pki.h"
#include "provenance/provenance_store.h"
#include "provenance/snapshot.h"
#include "provenance/subtree_hasher.h"
#include "provenance/verifier.h"
#include "storage/tree_store.h"

namespace provdb::provenance {

/// In-place audit of a whole deployment: where ProvenanceVerifier checks
/// one recipient bundle, the auditor sweeps the entire provenance store
/// and the live back-end database —
///
///   * every record chain re-verifies (the §3 check 2 over all objects),
///   * every live object whose chain exists currently hashes to its most
///     recent record's output state (check 1, applied in place), and
///   * every chain tail object that no longer exists is reported unless
///     its absence is explained by deletion semantics.
///
/// Run it periodically (or before exporting bundles) to catch tampering
/// of the provenance database itself, not just of shipped bundles.
///
/// With `parallelism.num_threads > 1` the sweep fans out across a
/// ThreadPool owned by the auditor — chains are independent (§3.2), and
/// check-1 rehashes of distinct live objects only read the tree — while
/// per-object results are merged in ascending object-id order, so the
/// report is byte-identical to a sequential audit.
class StoreAuditor {
 public:
  StoreAuditor(const crypto::ParticipantRegistry* registry,
               crypto::HashAlgorithm alg = crypto::HashAlgorithm::kSha1,
               ParallelismConfig parallelism = {});

  /// Audits `store` against the live `tree`. `report.ok()` iff clean.
  /// [[nodiscard]]: an unread audit report is an undetected tamper.
  ///
  /// Precondition: the store is quiescent — no concurrent AddRecord /
  /// PruneObject / pipeline flush for the duration of the call. This
  /// overload reads the store's writer-current state directly. To audit
  /// a live deployment while ingest continues, open a StoreSnapshot
  /// (ShardedProvenanceStore::OpenSnapshot / IngestPipeline::OpenSnapshot)
  /// and use the snapshot overload below (DESIGN.md §16).
  [[nodiscard]] VerificationReport Audit(const ProvenanceStore& store,
                                         const storage::TreeStore& tree) const;

  /// Audits a pinned snapshot against the live `tree`. The snapshot is an
  /// immutable batch-boundary cut, so this overload is safe to run while
  /// ingest is live; record pointers stay valid for the snapshot's
  /// lifetime and no store lock is taken.
  [[nodiscard]] VerificationReport Audit(const StoreSnapshot& snapshot,
                                         const storage::TreeStore& tree) const;

 private:
  /// Shared body of both overloads: check 2 over every chain, then the
  /// in-place check-1 sweep of live objects.
  VerificationReport AuditChains(
      const std::map<storage::ObjectId,
                     std::vector<const ProvenanceRecord*>>& chains,
      const storage::TreeStore& tree) const;

  const crypto::ParticipantRegistry* registry_;
  ChecksumEngine engine_;
  std::unique_ptr<ThreadPool> pool_;  // null when sequential

  // Audit-sweep observability (docs/OBSERVABILITY.md). Chain-level work
  // is counted by the shared verify.* instruments inside
  // VerifyRecordChains; these cover the audit-only live-object sweep.
  observability::Counter* runs_;
  observability::Counter* live_checks_;
  observability::Counter* issues_;
  observability::Histogram* run_latency_;
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_AUDITOR_H_
