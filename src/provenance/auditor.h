#ifndef PROVDB_PROVENANCE_AUDITOR_H_
#define PROVDB_PROVENANCE_AUDITOR_H_

#include "crypto/pki.h"
#include "provenance/provenance_store.h"
#include "provenance/subtree_hasher.h"
#include "provenance/verifier.h"
#include "storage/tree_store.h"

namespace provdb::provenance {

/// In-place audit of a whole deployment: where ProvenanceVerifier checks
/// one recipient bundle, the auditor sweeps the entire provenance store
/// and the live back-end database —
///
///   * every record chain re-verifies (the §3 check 2 over all objects),
///   * every live object whose chain exists currently hashes to its most
///     recent record's output state (check 1, applied in place), and
///   * every chain tail object that no longer exists is reported unless
///     its absence is explained by deletion semantics.
///
/// Run it periodically (or before exporting bundles) to catch tampering
/// of the provenance database itself, not just of shipped bundles.
class StoreAuditor {
 public:
  StoreAuditor(const crypto::ParticipantRegistry* registry,
               crypto::HashAlgorithm alg = crypto::HashAlgorithm::kSha1);

  /// Audits `store` against the live `tree`. `report.ok()` iff clean.
  VerificationReport Audit(const ProvenanceStore& store,
                           const storage::TreeStore& tree) const;

 private:
  const crypto::ParticipantRegistry* registry_;
  ChecksumEngine engine_;
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_AUDITOR_H_
