#include "provenance/streaming_hasher.h"

#include "common/varint.h"
#include "provenance/subtree_hasher.h"

namespace provdb::provenance {

namespace {

// The (tag-less) header of a node-hash preimage: varint(id) || value.
Bytes NodeHeader(storage::ObjectId id, const storage::Value& value) {
  Bytes header;
  AppendVarint64(&header, id);
  value.CanonicalEncode(&header);
  return header;
}

}  // namespace

StreamingTableHasher::StreamingTableHasher(crypto::HashAlgorithm alg,
                                           storage::ObjectId table_id,
                                           const storage::Value& table_value)
    : alg_(alg), table_hasher_(crypto::CreateHasher(alg)) {
  // Tables with rows are interior nodes; the empty-table case (leaf tag)
  // cannot occur in the streaming workloads, so the interior tag is
  // committed up front and the header streamed immediately.
  uint8_t tag = kInteriorNodeTag;
  table_hasher_->Update(ByteView(&tag, 1));
  Bytes header = NodeHeader(table_id, table_value);
  table_hasher_->Update(header);
}

void StreamingTableHasher::AddRow(
    storage::ObjectId row_id, const storage::Value& row_value,
    const std::vector<std::pair<storage::ObjectId, storage::Value>>& cells) {
  std::vector<crypto::Digest> cell_hashes;
  cell_hashes.reserve(cells.size());
  for (const auto& [cell_id, cell_value] : cells) {
    cell_hashes.push_back(HashTreeNode(alg_, cell_id, cell_value, {}));
    ++nodes_hashed_;
  }
  crypto::Digest row_hash = HashTreeNode(alg_, row_id, row_value, cell_hashes);
  ++nodes_hashed_;
  table_hasher_->Update(row_hash.view());
  ++rows_hashed_;
}

crypto::Digest StreamingTableHasher::Finish() {
  ++nodes_hashed_;  // the table node itself
  return table_hasher_->Finish();
}

StreamingDatabaseHasher::StreamingDatabaseHasher(
    crypto::HashAlgorithm alg, storage::ObjectId database_id,
    const storage::Value& database_value)
    : hasher_(crypto::CreateHasher(alg)) {
  uint8_t tag = kInteriorNodeTag;
  hasher_->Update(ByteView(&tag, 1));
  Bytes header = NodeHeader(database_id, database_value);
  hasher_->Update(header);
}

void StreamingDatabaseHasher::AddTable(const crypto::Digest& table_hash) {
  hasher_->Update(table_hash.view());
  ++tables_added_;
}

crypto::Digest StreamingDatabaseHasher::Finish() { return hasher_->Finish(); }

}  // namespace provdb::provenance
