#ifndef PROVDB_PROVENANCE_ATTACK_H_
#define PROVDB_PROVENANCE_ATTACK_H_

#include <vector>

#include "common/result.h"
#include "crypto/pki.h"
#include "provenance/bundle.h"
#include "provenance/checksum.h"
#include "provenance/record.h"

namespace provdb::provenance::attacks {

/// Tampering primitives modeling the §2.2 adversary. Each function mutates
/// a RecipientBundle the way an attacker with write access to the
/// provenance store (or the wire) would; the tests then assert that
/// ProvenanceVerifier detects the tampering. Nothing here can forge
/// another participant's signature — that is the point.

/// R1: modify the input/output values recorded by (someone else's) record.
/// Flips a bit of the output state hash of `record_index`.
Status TamperRecordOutputHash(RecipientBundle* bundle, size_t record_index);

/// R1 variant: flip a bit of an input state hash.
Status TamperRecordInputHash(RecipientBundle* bundle, size_t record_index,
                             size_t input_index);

/// R2/R7: remove the record at `record_index` from the bundle.
Status RemoveRecord(RecipientBundle* bundle, size_t record_index);

/// R3/R6: splice a forged record into an object's chain between seqIDs.
/// The attacker is a legitimate participant (has a valid key) and signs
/// the forged record themselves, claiming an update
/// `victim_object: fake_pre -> fake_post` at `seq_id`. Existing records
/// are re-numbered upward to make room, which is exactly what colluders
/// attempting R6 would need to do.
Status InsertForgedRecord(RecipientBundle* bundle,
                          const crypto::Participant& attacker,
                          const ChecksumEngine& engine,
                          storage::ObjectId victim_object, SeqId seq_id,
                          const crypto::Digest& fake_pre,
                          const crypto::Digest& fake_post);

/// R4: modify the data object itself without submitting provenance.
Status TamperDataValue(RecipientBundle* bundle, storage::ObjectId node,
                       const storage::Value& new_value);

/// R5: attribute the provenance object of `bundle` to a different data
/// object: replaces the bundle's data with `other_data` and rewrites the
/// subject. (The provenance records still describe the original object.)
Status ReattributeProvenance(RecipientBundle* bundle,
                             SubtreeSnapshot other_data);

/// R5 variant: keep the data bytes but rename the object ids so the
/// provenance of object A appears to describe object B.
Status RenameDataObject(RecipientBundle* bundle, storage::ObjectId new_root);

/// Rewrites the participant field of a record to frame `scapegoat`
/// (combined R1/R8 attack: attribution forgery).
Status ReassignRecordParticipant(RecipientBundle* bundle, size_t record_index,
                                 crypto::ParticipantId scapegoat);

/// R2 "clean removal" by a colluder who also repairs seqIDs: removes the
/// record and renumbers successors down so the seqID sequence stays
/// contiguous. Detection must then come from the checksum chain, not the
/// numbering.
Status RemoveRecordAndRenumber(RecipientBundle* bundle, size_t record_index);

}  // namespace provdb::provenance::attacks

#endif  // PROVDB_PROVENANCE_ATTACK_H_
