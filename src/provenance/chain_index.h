#ifndef PROVDB_PROVENANCE_CHAIN_INDEX_H_
#define PROVDB_PROVENANCE_CHAIN_INDEX_H_

#include <cstdint>

#include "common/epoch.h"
#include "provenance/record.h"
#include "storage/tree_store.h"

namespace provdb::provenance {

/// One link of a copy-on-write chain: the cons cell holding an object's
/// newest record, pointing back at the rest of its chain. Append shares
/// the entire existing list (records for different epochs of the store
/// alias the same cells), which is what lets a pinned snapshot keep
/// reading a chain while the writer extends it.
struct ChainNode : EpochRetired {
  const ProvenanceRecord* record = nullptr;
  /// The record's stable index in its shard store (ascending along the
  /// chain, so `prev->index < index` always holds).
  uint64_t index = 0;
  const ChainNode* prev = nullptr;
  /// Cells in this list including this one — lets readers size chain
  /// materialization without a second walk.
  uint64_t length = 0;
};

/// Immutable 16-way radix trie keyed by object id, four bits per level
/// starting at the low nibble. The writer never mutates a reachable
/// node: every insert path-copies from the root down and retires the
/// replaced nodes through the store's epoch domain, so readers pinned on
/// an older root keep a consistent view. All operations are static over
/// an explicit root — the same code serves the writer's working root and
/// the published roots inside snapshots.
class ChainIndex {
 public:
  /// Terminal entry: an object's chain head. A leaf with a null head is
  /// a prune tombstone (the object had a chain and it was dropped).
  struct Leaf : EpochRetired {
    storage::ObjectId key = storage::kInvalidObjectId;
    const ChainNode* head = nullptr;
  };

  /// Interior node. Children are tagged pointers: 0 = empty, low bit
  /// set = Leaf*, otherwise Node*. (All nodes are heap-allocated and
  /// therefore at least 8-aligned, so the low bit is free for the tag.)
  struct Node : EpochRetired {
    uintptr_t child[16] = {};
  };

  /// The leaf for `key`, or null. Safe on any root, including null.
  static const Leaf* Find(const Node* root, storage::ObjectId key);

  /// Path-copying insert-or-replace: returns the new root (never null).
  /// Takes ownership of `leaf`. Replaced nodes (and a replaced same-key
  /// leaf) are retired through `domain`, or deleted immediately when
  /// `domain` is null (single-threaded store, no readers by contract).
  /// A replaced leaf's chain cells are NOT retired — the new leaf is
  /// expected to link to them (append) or the caller retires them
  /// itself (prune tombstone).
  static const Node* Insert(const Node* root, Leaf* leaf, EpochDomain* domain);

  /// Visits every leaf under `root` (tombstones included). Order is
  /// radix order of the reversed-nibble key — deterministic but not
  /// sorted; callers wanting id order collect into an ordered map.
  template <typename Fn>
  static void ForEachLeaf(const Node* root, Fn&& fn) {
    if (root == nullptr) {
      return;
    }
    for (uintptr_t entry : root->child) {
      if (entry == 0) {
        continue;
      }
      if (IsLeaf(entry)) {
        fn(*AsLeaf(entry));
      } else {
        ForEachLeaf(AsNode(entry), fn);
      }
    }
  }

  /// Frees the whole trie — interior nodes, leaves, and every chain
  /// cell reachable from a leaf head. Only for store destruction, when
  /// no reader can hold the root; retired (replaced) nodes are not
  /// reachable here and are freed by their epoch domain instead.
  static void FreeAll(const Node* root);

 private:
  static bool IsLeaf(uintptr_t entry) { return (entry & 1u) != 0; }
  static const Leaf* AsLeaf(uintptr_t entry) {
    return reinterpret_cast<const Leaf*>(entry & ~uintptr_t{1});
  }
  static const Node* AsNode(uintptr_t entry) {
    return reinterpret_cast<const Node*>(entry);
  }
  static uintptr_t Tag(const Leaf* leaf) {
    return reinterpret_cast<uintptr_t>(leaf) | uintptr_t{1};
  }
  static uintptr_t Tag(const Node* node) {
    return reinterpret_cast<uintptr_t>(node);
  }
  static size_t NibbleAt(storage::ObjectId key, unsigned shift) {
    return static_cast<size_t>((key >> shift) & 0xF);
  }

  static void RetireOrDelete(EpochRetired* node, EpochDomain* domain);
  static const Node* InsertRec(const Node* node, Leaf* leaf, unsigned shift,
                               EpochDomain* domain);
  static Node* BuildSplit(const Leaf* existing, Leaf* fresh, unsigned shift);
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_CHAIN_INDEX_H_
