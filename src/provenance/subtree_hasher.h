#ifndef PROVDB_PROVENANCE_SUBTREE_HASHER_H_
#define PROVDB_PROVENANCE_SUBTREE_HASHER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "common/thread_pool.h"
#include "crypto/digest.h"
#include "crypto/hash.h"
#include "observability/metrics.h"
#include "storage/tree_store.h"

namespace provdb::provenance {

/// Domain-separation tags prefixed to node-hash preimages. A leaf can
/// never collide with an interior node whose child digests happen to
/// decode as value bytes.
inline constexpr uint8_t kLeafNodeTag = 0x4C;      // 'L'
inline constexpr uint8_t kInteriorNodeTag = 0x4E;  // 'N'

/// The per-node hash underlying the recursive compound hash:
///   H( tag | enc(id) | enc(value) | child_hash_1 | ... | child_hash_k )
/// with `tag` distinguishing leaves from interior nodes. `child_hashes`
/// must be ordered by ascending child object id (the global total order).
/// Free function so subtree snapshots and the streaming hasher compute
/// identical digests without a TreeStore.
crypto::Digest HashTreeNode(crypto::HashAlgorithm alg, storage::ObjectId id,
                            const storage::Value& value,
                            const std::vector<crypto::Digest>& child_hashes);

/// Computes the recursive compound-object hash of §4.3 (Figure 5):
///
///   h(subtree(A)) = H( tag | enc(A.id) | enc(A.value) | h(c_1) | ... | h(c_k) )
///
/// where c_1 < ... < c_k are A's children in the global total order
/// (ascending object id) and `tag` distinguishes leaves from interior
/// nodes so a leaf can never collide with an empty-children encoding of an
/// interior node. Object ids are part of the hash — this is what lets a
/// verifier detect provenance re-attribution to a different object (R5).
///
/// Two strategies are provided, matching the paper:
///  * **Basic** — rehash every node of the subtree on each call.
///  * **Economical** — memoize per-node hashes (EconomicalHasher below);
///    an update dirties only the path from the changed node to the root,
///    so rehashing touches O(changed + height) nodes instead of the whole
///    tree.
class SubtreeHasher {
 public:
  /// `tree` must outlive the hasher.
  SubtreeHasher(const storage::TreeStore* tree,
                crypto::HashAlgorithm alg = crypto::HashAlgorithm::kSha1);

  /// Basic approach: full recursive walk, no caching. Safe to call from
  /// several threads at once (the tree is only read; the work counter is
  /// atomic).
  [[nodiscard]] Result<crypto::Digest> HashSubtreeBasic(
      storage::ObjectId root) const;

  /// Basic walk fanned out over `pool`: the subtrees of root's children
  /// are hashed as independent pool tasks (child digests combine in
  /// ascending-id order, §4.3, so the digest is identical to the
  /// sequential walk). Falls back to the sequential walk when `pool` is
  /// null, has a single worker, or the root has fewer than two children.
  /// Must not be called from inside a task running on the same pool.
  [[nodiscard]] Result<crypto::Digest> HashSubtreeBasic(
      storage::ObjectId root, ThreadPool* pool) const;

  /// Hash of one node given already-known child digests. Exposed for the
  /// streaming hasher and tests.
  crypto::Digest HashNode(storage::ObjectId id, const storage::Value& value,
                          const std::vector<crypto::Digest>& child_hashes) const;

  /// `h(A, val)` for an atomic (leaf) object — the Section 3 object hash.
  crypto::Digest HashAtomic(storage::ObjectId id,
                            const storage::Value& value) const;

  crypto::HashAlgorithm algorithm() const { return alg_; }

  /// Nodes hashed since construction / ResetCounters (work metric for the
  /// Fig. 7 Basic-vs-Economical comparison). Atomic so concurrent
  /// HashSubtreeBasic calls (the parallel auditor sweep) count correctly.
  uint64_t nodes_hashed() const {
    return nodes_hashed_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    nodes_hashed_.store(0, std::memory_order_relaxed);
  }

 private:
  const storage::TreeStore* tree_;
  crypto::HashAlgorithm alg_;
  mutable std::atomic<uint64_t> nodes_hashed_{0};

  // Process-wide mirrors of the per-hasher work counters, making the
  // Basic-vs-Economical rehash gap continuously visible via
  // `provdb stats` (docs/OBSERVABILITY.md).
  observability::Counter* nodes_hashed_total_;
  observability::Counter* subtree_calls_;
};

/// The Economical approach of §4.3: keeps a per-node digest cache.
/// Callers notify the hasher of mutations (`Invalidate`, `Forget`); cached
/// clean digests are reused, so re-hashing after an update costs one walk
/// of the changed paths instead of the whole tree.
class EconomicalHasher {
 public:
  EconomicalHasher(const storage::TreeStore* tree,
                   crypto::HashAlgorithm alg = crypto::HashAlgorithm::kSha1);

  /// Hash of subtree(root), reusing every clean cached digest.
  [[nodiscard]] Result<crypto::Digest> HashSubtree(storage::ObjectId root);

  /// Marks `id` and all its ancestors dirty (call after Update/Insert of
  /// `id`, and after Delete with the *parent's* id).
  void Invalidate(storage::ObjectId id);

  /// Drops cache entries for a deleted object.
  void Forget(storage::ObjectId id);

  /// Cached digest for `id` if present and clean.
  Result<crypto::Digest> CachedDigest(storage::ObjectId id) const;

  /// Number of cached entries.
  size_t cache_size() const { return cache_.size(); }

  /// Nodes actually hashed (cache misses) since ResetCounters.
  uint64_t nodes_hashed() const { return base_.nodes_hashed(); }
  void ResetCounters() { base_.ResetCounters(); }

  const SubtreeHasher& base() const { return base_; }

 private:
  struct Entry {
    crypto::Digest digest;
    bool dirty = true;
  };

  const storage::TreeStore* tree_;
  SubtreeHasher base_;
  std::unordered_map<storage::ObjectId, Entry> cache_;
  observability::Counter* memo_hits_;  // clean cached digests reused
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_SUBTREE_HASHER_H_
