#include "provenance/verifier.h"

#include <algorithm>
#include <future>
#include <map>
#include <utility>

#include "observability/trace.h"

namespace provdb::provenance {

std::string_view IssueKindName(IssueKind kind) {
  switch (kind) {
    case IssueKind::kDataHashMismatch:
      return "DataHashMismatch";
    case IssueKind::kSubjectMismatch:
      return "SubjectMismatch";
    case IssueKind::kMissingRecords:
      return "MissingRecords";
    case IssueKind::kChainLinkBroken:
      return "ChainLinkBroken";
    case IssueKind::kSeqViolation:
      return "SeqViolation";
    case IssueKind::kBadSignature:
      return "BadSignature";
    case IssueKind::kUnknownParticipant:
      return "UnknownParticipant";
    case IssueKind::kMalformedRecord:
      return "MalformedRecord";
    case IssueKind::kAggregateInputUnresolved:
      return "AggregateInputUnresolved";
    case IssueKind::kSnapshotMalformed:
      return "SnapshotMalformed";
  }
  return "Unknown";
}

std::string VerificationIssue::ToString() const {
  return std::string(IssueKindName(kind)) + " (object " +
         std::to_string(object) + ", seq " + std::to_string(seq_id) + "): " +
         message;
}

bool VerificationReport::HasIssue(IssueKind kind) const {
  for (const VerificationIssue& issue : issues) {
    if (issue.kind == kind) {
      return true;
    }
  }
  return false;
}

std::string VerificationReport::ToString() const {
  if (ok()) {
    return "OK (" + std::to_string(records_checked) + " records, " +
           std::to_string(signatures_verified) + " signatures verified)";
  }
  std::string out =
      "FAILED with " + std::to_string(issues.size()) + " issue(s):";
  for (const VerificationIssue& issue : issues) {
    out += "\n  - " + issue.ToString();
  }
  return out;
}

ProvenanceVerifier::ProvenanceVerifier(
    const crypto::ParticipantRegistry* registry, crypto::HashAlgorithm alg,
    ParallelismConfig parallelism)
    : registry_(registry),
      engine_(alg),
      runs_(observability::GlobalMetrics().counter("verify.runs")),
      run_latency_(
          observability::GlobalMetrics().histogram("verify.run.latency_us")) {
  if (!parallelism.sequential()) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(parallelism.num_threads));
  }
}

VerificationReport ProvenanceVerifier::Verify(
    const RecipientBundle& bundle) const {
  observability::ScopedLatencyTimer timer(run_latency_);
  observability::TraceSpan run_span("verify.run");
  runs_->Increment();
  VerificationReport report;
  auto add_issue = [&](IssueKind kind, storage::ObjectId object, SeqId seq,
                       std::string message) {
    report.issues.push_back(
        VerificationIssue{kind, object, seq, std::move(message)});
  };

  // Group the bundle's records into per-object chains, ordered by seqID.
  std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>> chains;
  for (const ProvenanceRecord& rec : bundle.records) {
    chains[rec.output.object_id].push_back(&rec);
  }
  for (auto& [id, chain] : chains) {
    std::stable_sort(chain.begin(), chain.end(),
                     [](const ProvenanceRecord* a, const ProvenanceRecord* b) {
                       return a->seq_id < b->seq_id;
                     });
  }

  // Check 1 (§3): the shipped data matches the most recent record.
  if (bundle.data.root() != bundle.subject) {
    add_issue(IssueKind::kSubjectMismatch, bundle.subject, 0,
              "data snapshot root " + std::to_string(bundle.data.root()) +
                  " is not the bundle subject");
  }
  auto subject_chain = chains.find(bundle.subject);
  if (subject_chain == chains.end() || subject_chain->second.empty()) {
    add_issue(IssueKind::kMissingRecords, bundle.subject, 0,
              "no provenance records for the subject object");
  } else {
    const ProvenanceRecord* latest = subject_chain->second.back();
    Result<crypto::Digest> data_hash =
        bundle.data.Hash(engine_.algorithm());
    if (!data_hash.ok()) {
      add_issue(IssueKind::kSnapshotMalformed, bundle.subject, 0,
                data_hash.status().message());
    } else if (data_hash.value() != latest->output.state_hash) {
      add_issue(IssueKind::kDataHashMismatch, bundle.subject, latest->seq_id,
                "data hash does not match the most recent provenance record "
                "(undocumented modification, or provenance re-attribution)");
    }
  }

  // Check 2 (§3): recompute every checksum, earliest first.
  VerifyRecordChains(*registry_, engine_, chains, &report, pool_.get());
  return report;
}

VerificationReport ProvenanceVerifier::VerifyStore(
    const StoreSnapshot& snapshot) const {
  observability::ScopedLatencyTimer timer(run_latency_);
  observability::TraceSpan run_span("verify.run");
  runs_->Increment();
  VerificationReport report;
  // Snapshot chains are already per-object in seqID order (AddRecord
  // enforces monotonicity); no grouping or sorting pass is needed.
  VerifyRecordChains(*registry_, engine_, snapshot.AllChains(), &report,
                     pool_.get());
  return report;
}

namespace {

/// Verification result of one per-object chain. Chains are self-contained
/// (§3.2): verifying one reads only its own records, the read-only `chains`
/// map (for aggregate-input resolution), and the registry — so these
/// results can be produced on any thread and merged in object-id order.
struct ChainCheckResult {
  std::vector<VerificationIssue> issues;
  uint64_t records_checked = 0;
  uint64_t signatures_verified = 0;
};

/// Per-chain instruments, shared by ProvenanceVerifier and StoreAuditor
/// (both funnel through VerifyRecordChains). Resolved once; recording is
/// lock-free, so pool workers verifying chains concurrently never contend.
struct ChainMetrics {
  observability::Counter* chains;
  observability::Counter* records;
  observability::Counter* signatures_ok;
  observability::Counter* signatures_bad;
  observability::Counter* issues;
  observability::Histogram* chain_latency;
};

const ChainMetrics& GetChainMetrics() {
  static const ChainMetrics* metrics = new ChainMetrics{
      observability::GlobalMetrics().counter("verify.chains"),
      observability::GlobalMetrics().counter("verify.records"),
      observability::GlobalMetrics().counter("verify.signatures.ok"),
      observability::GlobalMetrics().counter("verify.signatures.bad"),
      observability::GlobalMetrics().counter("verify.issues"),
      observability::GlobalMetrics().histogram("verify.chain.latency_us"),
  };
  return *metrics;
}

ChainCheckResult VerifyOneChain(
    const crypto::ParticipantRegistry& registry, const ChecksumEngine& engine,
    const std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>&
        chains,
    storage::ObjectId object, const std::vector<const ProvenanceRecord*>& chain) {
  const ChainMetrics& metrics = GetChainMetrics();
  observability::ScopedLatencyTimer timer(metrics.chain_latency);
  ChainCheckResult report;
  auto add_issue = [&](IssueKind kind, storage::ObjectId obj, SeqId seq,
                       std::string message) {
    report.issues.push_back(
        VerificationIssue{kind, obj, seq, std::move(message)});
  };
  const ChecksumEngine& engine_ = engine;  // keep the original loop body verbatim

  // One RsaSignatureVerifier — and thus one Montgomery context — per
  // participant seen in this chain, not one per record. Context
  // derivation is the expensive part of setting a verifier up
  // (crypto.bignum.montgomery_contexts counts them); a chain's records
  // typically come from a handful of participants.
  std::map<crypto::ParticipantId, crypto::RsaSignatureVerifier> verifiers;

  {
    const ProvenanceRecord* prev = nullptr;
    for (const ProvenanceRecord* rec : chain) {
      ++report.records_checked;

      // -- Structural validity -------------------------------------
      bool malformed = false;
      if (rec->output.object_id != object) {
        // The chain key is the object the store committed the record
        // under; a record claiming a different output is re-attribution
        // (R5). Honest groupings key chains by output id, so this can
        // only fire when the stored record bytes were tampered after
        // commit (e.g. under a pinned snapshot's chain index).
        add_issue(IssueKind::kSubjectMismatch, object, rec->seq_id,
                  "record claims output object " +
                      std::to_string(rec->output.object_id) +
                      " but is filed in the chain of object " +
                      std::to_string(object) + " (re-attribution, R5)");
        malformed = true;
      }
      if (rec->op == OperationType::kInsert && !rec->inputs.empty()) {
        add_issue(IssueKind::kMalformedRecord, object, rec->seq_id,
                  "insert record must have no inputs");
        malformed = true;
      }
      if (rec->op == OperationType::kUpdate &&
          (rec->inputs.size() != 1 || rec->inputs[0].object_id != object)) {
        add_issue(IssueKind::kMalformedRecord, object, rec->seq_id,
                  "update record must have exactly the object itself as "
                  "input");
        malformed = true;
      }
      if (rec->op == OperationType::kAggregate) {
        if (rec->inputs.empty()) {
          add_issue(IssueKind::kMalformedRecord, object, rec->seq_id,
                    "aggregate record must have inputs");
          malformed = true;
        }
        for (size_t i = 1; i < rec->inputs.size(); ++i) {
          if (rec->inputs[i - 1].object_id >= rec->inputs[i].object_id) {
            add_issue(IssueKind::kMalformedRecord, object, rec->seq_id,
                      "aggregate inputs must follow the global total order");
            malformed = true;
            break;
          }
        }
      }
      if (malformed) {
        prev = rec;
        continue;
      }

      // -- seqID discipline (§2.1) ----------------------------------
      if (prev == nullptr) {
        if (rec->op == OperationType::kInsert && rec->seq_id != 0) {
          add_issue(IssueKind::kSeqViolation, object, rec->seq_id,
                    "insert must start its chain at seqID 0");
        }
      } else {
        if (rec->op != OperationType::kUpdate) {
          add_issue(IssueKind::kSeqViolation, object, rec->seq_id,
                    "only updates may continue an existing chain");
        } else if (rec->seq_id != prev->seq_id + 1) {
          add_issue(IssueKind::kSeqViolation, object, rec->seq_id,
                    "update seqID must increment by one (previous was " +
                        std::to_string(prev->seq_id) + ")");
        }
      }

      // -- Chain linkage (R2/R3/R6/R7) -------------------------------
      if (rec->op == OperationType::kUpdate && prev != nullptr &&
          !(rec->inputs[0].state_hash == prev->output.state_hash)) {
        add_issue(IssueKind::kChainLinkBroken, object, rec->seq_id,
                  "update input state does not match the previous record's "
                  "output state");
      }

      // -- Checksum payload reconstruction ---------------------------
      Bytes payload;
      if (rec->op == OperationType::kInsert) {
        payload = engine_.BuildInsertPayload(rec->output.state_hash);
      } else if (rec->op == OperationType::kUpdate) {
        Bytes prev_checksum = prev != nullptr ? prev->checksum : Bytes{};
        payload = engine_.BuildUpdatePayload(rec->inputs[0].state_hash,
                                             rec->output.state_hash,
                                             prev_checksum);
      } else {
        // Aggregate: resolve each input to the record that produced the
        // exact recorded state; its checksum is the signed "previous".
        std::vector<crypto::Digest> input_hashes;
        std::vector<Bytes> prev_checksums;
        SeqId max_input_seq = 0;
        for (const ObjectState& input : rec->inputs) {
          input_hashes.push_back(input.state_hash);
          Bytes resolved;
          auto in_chain = chains.find(input.object_id);
          if (in_chain != chains.end()) {
            bool found = false;
            for (size_t i = in_chain->second.size(); i-- > 0;) {
              const ProvenanceRecord* cand = in_chain->second[i];
              if (cand->seq_id < rec->seq_id &&
                  cand->output.state_hash == input.state_hash) {
                resolved = cand->checksum;
                if (cand->seq_id > max_input_seq) {
                  max_input_seq = cand->seq_id;
                }
                found = true;
                break;
              }
            }
            if (!found) {
              add_issue(IssueKind::kAggregateInputUnresolved, object,
                        rec->seq_id,
                        "aggregation input " +
                            std::to_string(input.object_id) +
                            " has records in the bundle but none matching "
                            "the recorded input state");
            }
          }
          prev_checksums.push_back(std::move(resolved));
        }
        if (rec->seq_id != max_input_seq + 1) {
          add_issue(IssueKind::kSeqViolation, object, rec->seq_id,
                    "aggregate seqID must be 1 + max input seqID (" +
                        std::to_string(max_input_seq) + ")");
        }
        payload = engine_.BuildAggregatePayload(
            input_hashes, rec->output.state_hash, prev_checksums);
      }

      // -- Signature (R1, R8) ----------------------------------------
      Result<crypto::RsaPublicKey> key = registry.LookupKey(rec->participant);
      if (!key.ok()) {
        add_issue(IssueKind::kUnknownParticipant, object, rec->seq_id,
                  "participant " + std::to_string(rec->participant) +
                      " has no CA-endorsed certificate");
      } else {
        auto it = verifiers.find(rec->participant);
        if (it == verifiers.end()) {
          it = verifiers
                   .emplace(rec->participant,
                            crypto::RsaSignatureVerifier(
                                key.value(), engine_.algorithm()))
                   .first;
        }
        Status sig = it->second.Verify(payload, rec->checksum);
        if (!sig.ok()) {
          metrics.signatures_bad->Increment();
          add_issue(IssueKind::kBadSignature, object, rec->seq_id,
                    "checksum signature does not verify: " + sig.message());
        } else {
          ++report.signatures_verified;
        }
      }

      prev = rec;
    }
  }
  metrics.chains->Increment();
  metrics.records->Add(report.records_checked);
  metrics.signatures_ok->Add(report.signatures_verified);
  metrics.issues->Add(report.issues.size());
  return report;
}

}  // namespace

void VerifyRecordChains(
    const crypto::ParticipantRegistry& registry, const ChecksumEngine& engine,
    const std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>&
        chains,
    VerificationReport* report_out, ThreadPool* pool) {
  VerificationReport& report = *report_out;
  auto merge = [&report](ChainCheckResult result) {
    for (VerificationIssue& issue : result.issues) {
      report.issues.push_back(std::move(issue));
    }
    report.records_checked += result.records_checked;
    report.signatures_verified += result.signatures_verified;
  };

  if (pool == nullptr || pool->size() <= 1 || chains.size() <= 1) {
    for (const auto& [object, chain] : chains) {
      merge(VerifyOneChain(registry, engine, chains, object, chain));
    }
    return;
  }

  // One task per chain; futures are collected in map (= ascending object
  // id) order, so the merged report is byte-identical to the sequential
  // one regardless of task completion order.
  std::vector<std::future<ChainCheckResult>> results;
  results.reserve(chains.size());
  for (auto it = chains.begin(); it != chains.end(); ++it) {
    const storage::ObjectId object = it->first;
    const std::vector<const ProvenanceRecord*>* chain = &it->second;
    results.push_back(pool->Submit([&registry, &engine, &chains, object,
                                    chain] {
      return VerifyOneChain(registry, engine, chains, object, *chain);
    }));
  }
  for (std::future<ChainCheckResult>& result : results) {
    merge(result.get());
  }
}

}  // namespace provdb::provenance
