#include "provenance/tracked_relational.h"

namespace provdb::provenance {

TrackedRelationalDatabase::TrackedRelationalDatabase(
    const std::string& name, const crypto::Participant& creator,
    TrackedDatabaseOptions options)
    : db_(options) {
  root_ = db_.Insert(creator, storage::Value::String(name)).value();
}

Result<storage::ObjectId> TrackedRelationalDatabase::CreateTable(
    const crypto::Participant& p, const std::string& table_name,
    std::vector<std::string> columns) {
  if (tables_by_name_.count(table_name) > 0) {
    return Status::AlreadyExists("table '" + table_name + "' already exists");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("a table needs at least one column");
  }
  PROVDB_ASSIGN_OR_RETURN(
      storage::ObjectId table,
      db_.Insert(p, storage::Value::String(table_name), root_));
  tables_by_name_[table_name] = table;
  columns_by_table_[table] = std::move(columns);
  return table;
}

Result<storage::ObjectId> TrackedRelationalDatabase::InsertRow(
    const crypto::Participant& p, storage::ObjectId table,
    const std::vector<storage::Value>& cells) {
  auto cols = columns_by_table_.find(table);
  if (cols == columns_by_table_.end()) {
    return Status::NotFound("unknown table id " + std::to_string(table));
  }
  if (cells.size() != cols->second.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(cells.size()) + " cells; table has " +
        std::to_string(cols->second.size()) + " columns");
  }
  PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* table_node,
                          db_.tree().GetNode(table));
  int64_t ordinal = static_cast<int64_t>(table_node->children.size());

  PROVDB_RETURN_IF_ERROR(db_.BeginComplexOperation(p));
  auto row_or = db_.Insert(p, storage::Value::Int(ordinal), table);
  if (!row_or.ok()) {
    db_.EndComplexOperation().ok();
    return row_or.status();
  }
  for (const storage::Value& cell : cells) {
    Status s = db_.Insert(p, cell, *row_or).status();
    if (!s.ok()) {
      db_.EndComplexOperation().ok();
      return s;
    }
  }
  PROVDB_RETURN_IF_ERROR(db_.EndComplexOperation());
  return *row_or;
}

Status TrackedRelationalDatabase::UpdateCell(const crypto::Participant& p,
                                             storage::ObjectId row,
                                             const std::string& column,
                                             const storage::Value& value) {
  PROVDB_ASSIGN_OR_RETURN(storage::ObjectId table, TableOf(row));
  PROVDB_ASSIGN_OR_RETURN(size_t index, ColumnIndex(table, column));
  return UpdateCell(p, row, index, value);
}

Status TrackedRelationalDatabase::UpdateCell(const crypto::Participant& p,
                                             storage::ObjectId row,
                                             size_t column_index,
                                             const storage::Value& value) {
  PROVDB_ASSIGN_OR_RETURN(storage::ObjectId cell, CellId(row, column_index));
  return db_.Update(p, cell, value);
}

Status TrackedRelationalDatabase::DeleteRow(const crypto::Participant& p,
                                            storage::ObjectId row) {
  PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* row_node,
                          db_.tree().GetNode(row));
  std::vector<storage::ObjectId> cells = row_node->children;
  PROVDB_RETURN_IF_ERROR(db_.BeginComplexOperation(p));
  for (storage::ObjectId cell : cells) {
    Status s = db_.Delete(p, cell);
    if (!s.ok()) {
      db_.EndComplexOperation().ok();
      return s;
    }
  }
  Status s = db_.Delete(p, row);
  if (!s.ok()) {
    db_.EndComplexOperation().ok();
    return s;
  }
  return db_.EndComplexOperation();
}

Result<storage::ObjectId> TrackedRelationalDatabase::TableId(
    const std::string& table_name) const {
  auto it = tables_by_name_.find(table_name);
  if (it == tables_by_name_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  return it->second;
}

Result<size_t> TrackedRelationalDatabase::ColumnIndex(
    storage::ObjectId table, const std::string& column) const {
  auto it = columns_by_table_.find(table);
  if (it == columns_by_table_.end()) {
    return Status::NotFound("unknown table id " + std::to_string(table));
  }
  for (size_t i = 0; i < it->second.size(); ++i) {
    if (it->second[i] == column) {
      return i;
    }
  }
  return Status::NotFound("no column '" + column + "'");
}

Result<storage::ObjectId> TrackedRelationalDatabase::CellId(
    storage::ObjectId row, size_t column_index) const {
  PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* row_node,
                          db_.tree().GetNode(row));
  if (column_index >= row_node->children.size()) {
    return Status::OutOfRange("column index " + std::to_string(column_index) +
                              " out of range");
  }
  return row_node->children[column_index];
}

Result<storage::Value> TrackedRelationalDatabase::GetCell(
    storage::ObjectId row, size_t column_index) const {
  PROVDB_ASSIGN_OR_RETURN(storage::ObjectId cell, CellId(row, column_index));
  PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* node,
                          db_.tree().GetNode(cell));
  return node->value;
}

Result<std::vector<storage::ObjectId>> TrackedRelationalDatabase::RowsOf(
    storage::ObjectId table) const {
  if (columns_by_table_.count(table) == 0) {
    return Status::NotFound("unknown table id " + std::to_string(table));
  }
  PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* node,
                          db_.tree().GetNode(table));
  return node->children;
}

Result<storage::ObjectId> TrackedRelationalDatabase::TableOf(
    storage::ObjectId row) const {
  PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* node,
                          db_.tree().GetNode(row));
  if (columns_by_table_.count(node->parent) == 0) {
    return Status::NotFound("object " + std::to_string(row) +
                            " is not a row of a known table");
  }
  return node->parent;
}

}  // namespace provdb::provenance
