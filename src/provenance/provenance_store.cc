#include "provenance/provenance_store.h"

#include <algorithm>
#include <set>

#include "common/varint.h"
#include "provenance/checkpoint.h"
#include "provenance/serialization.h"

namespace provdb::provenance {

Result<uint64_t> ProvenanceStore::AddRecord(ProvenanceRecord record) {
  // find(), not operator[]: nothing may be inserted into the index until
  // the WAL append below has succeeded, or a failed append would leave an
  // empty chain entry behind.
  auto chain_it = by_output_.find(record.output.object_id);
  if (chain_it != by_output_.end() && !chain_it->second.empty()) {
    const ProvenanceRecord& last = records_[chain_it->second.back()];
    if (record.seq_id <= last.seq_id) {
      return Status::FailedPrecondition(
          "records for object " + std::to_string(record.output.object_id) +
          " must have increasing seqIDs (have " +
          std::to_string(last.seq_id) + ", got " +
          std::to_string(record.seq_id) + ")");
    }
  }
  if (wal_ != nullptr) {
    // Write-ahead: the record reaches the durable log before the
    // in-memory store. If the WAL rejects it, the store stays unchanged
    // and the caller sees the I/O failure instead of diverging from disk.
    PROVDB_RETURN_IF_ERROR(wal_->Append(EncodeWalRecordEntry(record)));
  }
  uint64_t index = records_.size();
  paper_schema_bytes_ += 12 + record.checksum.size();
  checksum_bytes_ += record.checksum.size();
  if (record.op == OperationType::kAggregate) {
    for (const ObjectState& input : record.inputs) {
      ++aggregation_input_refs_[input.object_id];
    }
  }
  by_output_[record.output.object_id].push_back(index);
  records_.push_back(std::move(record));
  pruned_.push_back(false);
  ++live_count_;
  return index;
}

Result<size_t> ProvenanceStore::PruneObject(storage::ObjectId id) {
  auto refs = aggregation_input_refs_.find(id);
  if (refs != aggregation_input_refs_.end() && refs->second > 0) {
    return Status::FailedPrecondition(
        "object " + std::to_string(id) + " is an aggregation input of " +
        std::to_string(refs->second) +
        " record(s); its provenance is still referenced downstream");
  }
  auto it = by_output_.find(id);
  if (it == by_output_.end()) {
    return static_cast<size_t>(0);
  }
  if (wal_ != nullptr) {
    // Write-ahead, mirroring AddRecord: the prune marker reaches the
    // durable log before the store forgets the records, so recovery
    // replays the prune instead of resurrecting pruned history.
    PROVDB_RETURN_IF_ERROR(wal_->Append(EncodeWalPruneEntry(id)));
  }
  size_t dropped = 0;
  for (uint64_t index : it->second) {
    if (pruned_[index]) {
      continue;
    }
    const ProvenanceRecord& rec = records_[index];
    paper_schema_bytes_ -= 12 + rec.checksum.size();
    checksum_bytes_ -= rec.checksum.size();
    if (rec.op == OperationType::kAggregate) {
      for (const ObjectState& input : rec.inputs) {
        auto in_refs = aggregation_input_refs_.find(input.object_id);
        if (in_refs != aggregation_input_refs_.end() && in_refs->second > 0) {
          --in_refs->second;
        }
      }
    }
    pruned_[index] = true;
    --live_count_;
    ++dropped;
  }
  by_output_.erase(it);
  return dropped;
}

std::vector<uint64_t> ProvenanceStore::ChainOf(storage::ObjectId id) const {
  auto it = by_output_.find(id);
  if (it == by_output_.end()) {
    return {};
  }
  return it->second;
}

Result<const ProvenanceRecord*> ProvenanceStore::LatestFor(
    storage::ObjectId id) const {
  auto it = by_output_.find(id);
  if (it == by_output_.end() || it->second.empty()) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(id));
  }
  return &records_[it->second.back()];
}

namespace {

/// Work item of the DAG closure: include an object's chain up to and
/// including `end_pos`.
struct Prefix {
  storage::ObjectId object;
  size_t end_pos;
};

}  // namespace

std::vector<ProvenanceRecord> ProvenanceStore::CollectClosure(
    std::vector<std::pair<storage::ObjectId, size_t>> seeds) const {
  std::set<uint64_t> included;
  std::vector<Prefix> work;
  for (const auto& [object, end_pos] : seeds) {
    work.push_back({object, end_pos});
  }

  while (!work.empty()) {
    Prefix prefix = work.back();
    work.pop_back();
    auto it = by_output_.find(prefix.object);
    if (it == by_output_.end()) {
      continue;  // untracked input (bootstrap data): no history to include
    }
    const std::vector<uint64_t>& chain = it->second;
    for (size_t pos = 0; pos <= prefix.end_pos && pos < chain.size(); ++pos) {
      uint64_t idx = chain[pos];
      if (!included.insert(idx).second) {
        continue;  // already included (shared history via the DAG)
      }
      const ProvenanceRecord& rec = records_[idx];
      if (rec.op != OperationType::kAggregate) {
        continue;
      }
      // Follow each aggregation input back to the record that produced
      // the exact input state (matching output hash), then include that
      // input's chain up to there.
      for (const ObjectState& input : rec.inputs) {
        auto input_chain_it = by_output_.find(input.object_id);
        if (input_chain_it == by_output_.end()) {
          continue;  // untracked input
        }
        const std::vector<uint64_t>& input_chain = input_chain_it->second;
        // Scan from the end: the matching record is the latest one whose
        // output state equals the recorded input state.
        for (size_t pos2 = input_chain.size(); pos2-- > 0;) {
          const ProvenanceRecord& cand = records_[input_chain[pos2]];
          if (cand.output.state_hash == input.state_hash &&
              cand.seq_id < rec.seq_id) {
            work.push_back({input.object_id, pos2});
            break;
          }
        }
      }
    }
  }

  std::vector<ProvenanceRecord> out;
  out.reserve(included.size());
  for (uint64_t idx : included) {  // std::set iterates in ascending order
    out.push_back(records_[idx]);
  }
  return out;
}

Result<std::vector<ProvenanceRecord>> ProvenanceStore::ExtractProvenance(
    storage::ObjectId subject) const {
  auto subject_chain = by_output_.find(subject);
  if (subject_chain == by_output_.end() || subject_chain->second.empty()) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(subject));
  }
  return CollectClosure({{subject, subject_chain->second.size() - 1}});
}

Result<std::vector<ProvenanceRecord>> ProvenanceStore::ExtractProvenanceDeep(
    storage::ObjectId subject,
    const std::vector<storage::ObjectId>& descendants) const {
  auto subject_chain = by_output_.find(subject);
  if (subject_chain == by_output_.end() || subject_chain->second.empty()) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(subject));
  }
  std::vector<std::pair<storage::ObjectId, size_t>> seeds;
  seeds.emplace_back(subject, subject_chain->second.size() - 1);
  for (storage::ObjectId descendant : descendants) {
    auto it = by_output_.find(descendant);
    if (it != by_output_.end() && !it->second.empty()) {
      seeds.emplace_back(descendant, it->second.size() - 1);
    }
  }
  return CollectClosure(std::move(seeds));
}

uint64_t ProvenanceStore::SerializedBytes() const {
  uint64_t total = 0;
  for (uint64_t i = 0; i < records_.size(); ++i) {
    if (!pruned_[i]) {
      total += EncodeRecord(records_[i]).size();
    }
  }
  return total;
}

Status ProvenanceStore::SaveToLog(storage::RecordLog* log) const {
  for (uint64_t i = 0; i < records_.size(); ++i) {
    if (!pruned_[i]) {
      PROVDB_RETURN_IF_ERROR(log->Append(EncodeRecord(records_[i])).status());
    }
  }
  return Status::OK();
}

Result<ProvenanceStore> ProvenanceStore::LoadFromLog(
    const storage::RecordLog& log) {
  ProvenanceStore store;
  Status status = log.ForEach([&](uint64_t, ByteView payload) {
    PROVDB_ASSIGN_OR_RETURN(ProvenanceRecord rec, DecodeRecord(payload));
    return store.AddRecord(std::move(rec)).status();
  });
  if (!status.ok()) {
    return status;
  }
  return store;
}

Status ProvenanceStore::AttachWal(storage::WalWriter* wal,
                                  bool checkpoint_existing) {
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("a WAL is already attached");
  }
  if (checkpoint_existing) {
    // Only live records are checkpointed, so already-pruned history needs
    // no prune markers: the WAL starts from the post-prune state.
    for (uint64_t i = 0; i < records_.size(); ++i) {
      if (!pruned_[i]) {
        PROVDB_RETURN_IF_ERROR(wal->Append(EncodeWalRecordEntry(records_[i])));
      }
    }
  }
  wal_ = wal;
  return Status::OK();
}

Result<ProvenanceStore> ProvenanceStore::RecoverFromWal(
    storage::Env* env, const std::string& dir,
    storage::WalRecoveryReport* report,
    const crypto::SignatureVerifier* checkpoint_verifier) {
  // Checkpoint-bounded recovery: rebuild from the newest sealed snapshot
  // (if any) and replay only the WAL suffix past its horizon on top.
  ProvenanceStore store;
  storage::WalReaderOptions reader_options;
  uint64_t checkpoint_records = 0;
  Result<uint64_t> latest = LatestCheckpointHorizon(env, dir);
  if (latest.ok()) {
    if (checkpoint_verifier == nullptr) {
      return Status::FailedPrecondition(
          "a sealed checkpoint exists in " + dir +
          " but no verifier was supplied to check its seal");
    }
    PROVDB_ASSIGN_OR_RETURN(
        LoadedCheckpoint checkpoint,
        CheckpointReader::Load(env, CheckpointFileName(dir, latest.value()),
                               *checkpoint_verifier));
    reader_options.checkpoint_horizon = checkpoint.manifest.wal_horizon;
    checkpoint_records = checkpoint.manifest.live_records;
    store = std::move(checkpoint.store);
  } else if (latest.status().code() != StatusCode::kNotFound) {
    return latest.status();
  }

  PROVDB_ASSIGN_OR_RETURN(storage::WalReader reader,
                          storage::WalReader::Open(env, dir, reader_options));
  if (report != nullptr) {
    *report = reader.report();
    report->checkpoint_horizon = reader_options.checkpoint_horizon;
    report->checkpoint_records = checkpoint_records;
  }
  // Replay typed WAL entries (not LoadFromLog, whose snapshot files carry
  // bare records): appends re-add, prune markers re-prune, so the
  // recovered store converges to the pre-crash state instead of
  // resurrecting pruned history.
  Status status = reader.log().ForEach([&](uint64_t, ByteView payload) {
    if (payload.empty()) {
      return Status::Corruption("empty WAL entry");
    }
    switch (payload[0]) {
      case static_cast<uint8_t>(WalEntryType::kRecord): {
        PROVDB_ASSIGN_OR_RETURN(ProvenanceRecord rec,
                                DecodeRecord(payload.subview(1)));
        return store.AddRecord(std::move(rec)).status();
      }
      case static_cast<uint8_t>(WalEntryType::kPrune): {
        VarintReader entry(payload.subview(1));
        PROVDB_ASSIGN_OR_RETURN(uint64_t id, entry.ReadVarint64());
        return store.PruneObject(id).status();
      }
      default:
        return Status::Corruption("unknown WAL entry type " +
                                  std::to_string(payload[0]));
    }
  });
  if (!status.ok()) {
    return status;
  }
  return store;
}

}  // namespace provdb::provenance
