#include "provenance/provenance_store.h"

#include <algorithm>
#include <set>

#include "common/varint.h"
#include "provenance/checkpoint.h"
#include "provenance/serialization.h"

namespace provdb::provenance {

ProvenanceStore::~ProvenanceStore() { DestroyOwned(); }

ProvenanceStore::ProvenanceStore(ProvenanceStore&& other) noexcept {
  *this = std::move(other);
}

// Moves are writer-side operations: they require quiescence on both
// stores (no pinned reader may hold either store's versions), which
// every caller — recovery, LoadFromLog, test plumbing — satisfies.
ProvenanceStore& ProvenanceStore::operator=(ProvenanceStore&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  DestroyOwned();
  chunks_ = std::move(other.chunks_);
  record_count_ = other.record_count_;
  other.record_count_ = 0;
  pruned_ = std::move(other.pruned_);
  chain_root_ = other.chain_root_;
  other.chain_root_ = nullptr;
  aggregation_input_refs_ = std::move(other.aggregation_input_refs_);
  live_count_ = other.live_count_;
  other.live_count_ = 0;
  paper_schema_bytes_ = other.paper_schema_bytes_;
  other.paper_schema_bytes_ = 0;
  checksum_bytes_ = other.checksum_bytes_;
  other.checksum_bytes_ = 0;
  wal_ = other.wal_;
  other.wal_ = nullptr;
  domain_ = other.domain_;
  other.domain_ = nullptr;
  published_.store(other.published_.exchange(nullptr,
                                             std::memory_order_relaxed),
                   std::memory_order_relaxed);
  spare_ = other.spare_;
  other.spare_ = nullptr;
  dirty_ = other.dirty_;
  other.dirty_ = false;
  publish_tick_ = other.publish_tick_;
  other.publish_tick_ = 0;
  return *this;
}

void ProvenanceStore::DestroyOwned() {
  // The current trie (and the chain cells its live leaves reach) is
  // owned here; every *superseded* node went through RetireOrDelete and
  // is the domain's to free. The published version shares subtrees with
  // the current root, so only the version object itself is deleted.
  ChainIndex::FreeAll(chain_root_);
  chain_root_ = nullptr;
  delete published_.exchange(nullptr, std::memory_order_relaxed);
  delete spare_;
  spare_ = nullptr;
}

void ProvenanceStore::RetireOrDelete(EpochRetired* node) {
  if (domain_ != nullptr) {
    domain_->Retire(node);
  } else {
    delete node;
  }
}

ProvenanceRecord* ProvenanceStore::ArenaAppend(ProvenanceRecord record) {
  if (record_count_ % kChunkRecords == 0) {
    chunks_.push_back(std::make_unique<Chunk>());
  }
  ProvenanceRecord* slot =
      &chunks_.back()->slots[record_count_ % kChunkRecords];
  *slot = std::move(record);
  ++record_count_;
  return slot;
}

void ProvenanceStore::MarkDirty() {
  dirty_ = true;
  if (domain_ != nullptr && spare_ == nullptr) {
    spare_ = new StoreVersion;
  }
}

void ProvenanceStore::PublishSnapshot() {
  if (domain_ == nullptr || !dirty_) {
    return;
  }
  StoreVersion* version = spare_;
  if (version == nullptr) {
    // Only reachable when the state was built without a domain and the
    // domain attached afterwards (recovery); steady-state publishes use
    // the skeleton MarkDirty preallocated and stay allocation-free.
    version = new StoreVersion;
  }
  version->root = chain_root_;
  version->record_count = record_count_;
  version->live_records = live_count_;
  version->tick = ++publish_tick_;
  StoreVersion* old =
      published_.exchange(version, std::memory_order_acq_rel);
  if (old != nullptr) {
    domain_->Retire(old);
  }
  spare_ = nullptr;
  dirty_ = false;
  // Readers pinning from here on synchronize with this advance and
  // therefore see `version` (or newer) — the reclamation rule's anchor.
  domain_->Advance();
}

Result<uint64_t> ProvenanceStore::AddRecord(ProvenanceRecord record) {
  const storage::ObjectId id = record.output.object_id;
  const ChainIndex::Leaf* existing = ChainIndex::Find(chain_root_, id);
  const ChainNode* head = existing != nullptr ? existing->head : nullptr;
  if (head != nullptr) {
    const ProvenanceRecord& last = *head->record;
    if (record.seq_id <= last.seq_id) {
      return Status::FailedPrecondition(
          "records for object " + std::to_string(id) +
          " must have increasing seqIDs (have " +
          std::to_string(last.seq_id) + ", got " +
          std::to_string(record.seq_id) + ")");
    }
  }
  if (wal_ != nullptr) {
    // Write-ahead: the record reaches the durable log before the
    // in-memory store. If the WAL rejects it, the store stays unchanged
    // and the caller sees the I/O failure instead of diverging from disk.
    PROVDB_RETURN_IF_ERROR(wal_->Append(EncodeWalRecordEntry(record)));
  }
  const uint64_t index = record_count_;
  paper_schema_bytes_ += 12 + record.checksum.size();
  checksum_bytes_ += record.checksum.size();
  if (record.op == OperationType::kAggregate) {
    for (const ObjectState& input : record.inputs) {
      ++aggregation_input_refs_[input.object_id];
    }
  }
  ProvenanceRecord* slot = ArenaAppend(std::move(record));
  ChainNode* cell = new ChainNode;
  cell->record = slot;
  cell->index = index;
  cell->prev = head;
  cell->length = head != nullptr ? head->length + 1 : 1;
  ChainIndex::Leaf* leaf = new ChainIndex::Leaf;
  leaf->key = id;
  leaf->head = cell;
  chain_root_ = ChainIndex::Insert(chain_root_, leaf, domain_);
  pruned_.push_back(false);
  ++live_count_;
  MarkDirty();
  return index;
}

Result<size_t> ProvenanceStore::PruneObject(storage::ObjectId id) {
  auto refs = aggregation_input_refs_.find(id);
  if (refs != aggregation_input_refs_.end() && refs->second > 0) {
    return Status::FailedPrecondition(
        "object " + std::to_string(id) + " is an aggregation input of " +
        std::to_string(refs->second) +
        " record(s); its provenance is still referenced downstream");
  }
  const ChainIndex::Leaf* leaf = ChainIndex::Find(chain_root_, id);
  const ChainNode* head = leaf != nullptr ? leaf->head : nullptr;
  if (head == nullptr) {
    return static_cast<size_t>(0);
  }
  if (wal_ != nullptr) {
    // Write-ahead, mirroring AddRecord: the prune marker reaches the
    // durable log before the store forgets the records, so recovery
    // replays the prune instead of resurrecting pruned history.
    PROVDB_RETURN_IF_ERROR(wal_->Append(EncodeWalPruneEntry(id)));
  }
  size_t dropped = 0;
  for (const ChainNode* cell = head; cell != nullptr; cell = cell->prev) {
    if (pruned_[cell->index]) {
      continue;
    }
    const ProvenanceRecord& rec = *cell->record;
    paper_schema_bytes_ -= 12 + rec.checksum.size();
    checksum_bytes_ -= rec.checksum.size();
    if (rec.op == OperationType::kAggregate) {
      for (const ObjectState& input : rec.inputs) {
        auto in_refs = aggregation_input_refs_.find(input.object_id);
        if (in_refs != aggregation_input_refs_.end() && in_refs->second > 0) {
          --in_refs->second;
        }
      }
    }
    pruned_[cell->index] = true;
    --live_count_;
    ++dropped;
  }
  // Tombstone the leaf (readers on older roots still see the chain) and
  // retire the now-unreachable cons cells behind the old head.
  ChainIndex::Leaf* tombstone = new ChainIndex::Leaf;
  tombstone->key = id;
  tombstone->head = nullptr;
  chain_root_ = ChainIndex::Insert(chain_root_, tombstone, domain_);
  const ChainNode* cell = head;
  while (cell != nullptr) {
    const ChainNode* prev = cell->prev;
    RetireOrDelete(const_cast<ChainNode*>(cell));
    cell = prev;
  }
  MarkDirty();
  return dropped;
}

std::vector<uint64_t> ProvenanceStore::ChainOf(storage::ObjectId id) const {
  const ChainIndex::Leaf* leaf = ChainIndex::Find(chain_root_, id);
  const ChainNode* head = leaf != nullptr ? leaf->head : nullptr;
  if (head == nullptr) {
    return {};
  }
  std::vector<uint64_t> out(static_cast<size_t>(head->length));
  size_t pos = out.size();
  for (const ChainNode* cell = head; cell != nullptr; cell = cell->prev) {
    out[--pos] = cell->index;
  }
  return out;
}

Result<const ProvenanceRecord*> ProvenanceStore::LatestFor(
    storage::ObjectId id) const {
  const ChainIndex::Leaf* leaf = ChainIndex::Find(chain_root_, id);
  const ChainNode* head = leaf != nullptr ? leaf->head : nullptr;
  if (head == nullptr) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(id));
  }
  return head->record;
}

namespace {

/// Work item of the DAG closure: include an object's chain up to and
/// including `end_pos`.
struct Prefix {
  storage::ObjectId object;
  size_t end_pos;
};

}  // namespace

std::vector<ProvenanceRecord> ProvenanceStore::CollectClosure(
    std::vector<std::pair<storage::ObjectId, size_t>> seeds) const {
  std::set<uint64_t> included;
  std::vector<Prefix> work;
  for (const auto& [object, end_pos] : seeds) {
    work.push_back({object, end_pos});
  }

  while (!work.empty()) {
    Prefix prefix = work.back();
    work.pop_back();
    const std::vector<uint64_t> chain = ChainOf(prefix.object);
    if (chain.empty()) {
      continue;  // untracked input (bootstrap data): no history to include
    }
    for (size_t pos = 0; pos <= prefix.end_pos && pos < chain.size(); ++pos) {
      uint64_t idx = chain[pos];
      if (!included.insert(idx).second) {
        continue;  // already included (shared history via the DAG)
      }
      const ProvenanceRecord& rec = record(idx);
      if (rec.op != OperationType::kAggregate) {
        continue;
      }
      // Follow each aggregation input back to the record that produced
      // the exact input state (matching output hash), then include that
      // input's chain up to there.
      for (const ObjectState& input : rec.inputs) {
        const std::vector<uint64_t> input_chain = ChainOf(input.object_id);
        // Scan from the end: the matching record is the latest one whose
        // output state equals the recorded input state.
        for (size_t pos2 = input_chain.size(); pos2-- > 0;) {
          const ProvenanceRecord& cand = record(input_chain[pos2]);
          if (cand.output.state_hash == input.state_hash &&
              cand.seq_id < rec.seq_id) {
            work.push_back({input.object_id, pos2});
            break;
          }
        }
      }
    }
  }

  std::vector<ProvenanceRecord> out;
  out.reserve(included.size());
  for (uint64_t idx : included) {  // std::set iterates in ascending order
    out.push_back(record(idx));
  }
  return out;
}

Result<std::vector<ProvenanceRecord>> ProvenanceStore::ExtractProvenance(
    storage::ObjectId subject) const {
  const std::vector<uint64_t> subject_chain = ChainOf(subject);
  if (subject_chain.empty()) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(subject));
  }
  return CollectClosure({{subject, subject_chain.size() - 1}});
}

Result<std::vector<ProvenanceRecord>> ProvenanceStore::ExtractProvenanceDeep(
    storage::ObjectId subject,
    const std::vector<storage::ObjectId>& descendants) const {
  const std::vector<uint64_t> subject_chain = ChainOf(subject);
  if (subject_chain.empty()) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(subject));
  }
  std::vector<std::pair<storage::ObjectId, size_t>> seeds;
  seeds.emplace_back(subject, subject_chain.size() - 1);
  for (storage::ObjectId descendant : descendants) {
    const std::vector<uint64_t> chain = ChainOf(descendant);
    if (!chain.empty()) {
      seeds.emplace_back(descendant, chain.size() - 1);
    }
  }
  return CollectClosure(std::move(seeds));
}

uint64_t ProvenanceStore::SerializedBytes() const {
  uint64_t total = 0;
  for (uint64_t i = 0; i < record_count_; ++i) {
    if (!pruned_[i]) {
      total += EncodeRecord(record(i)).size();
    }
  }
  return total;
}

Status ProvenanceStore::SaveToLog(storage::RecordLog* log) const {
  for (uint64_t i = 0; i < record_count_; ++i) {
    if (!pruned_[i]) {
      PROVDB_RETURN_IF_ERROR(log->Append(EncodeRecord(record(i))).status());
    }
  }
  return Status::OK();
}

Result<ProvenanceStore> ProvenanceStore::LoadFromLog(
    const storage::RecordLog& log) {
  ProvenanceStore store;
  Status status = log.ForEach([&](uint64_t, ByteView payload) {
    PROVDB_ASSIGN_OR_RETURN(ProvenanceRecord rec, DecodeRecord(payload));
    return store.AddRecord(std::move(rec)).status();
  });
  if (!status.ok()) {
    return status;
  }
  return store;
}

Status ProvenanceStore::AttachWal(storage::WalWriter* wal,
                                  bool checkpoint_existing) {
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("a WAL is already attached");
  }
  if (checkpoint_existing) {
    // Only live records are checkpointed, so already-pruned history needs
    // no prune markers: the WAL starts from the post-prune state.
    for (uint64_t i = 0; i < record_count_; ++i) {
      if (!pruned_[i]) {
        PROVDB_RETURN_IF_ERROR(wal->Append(EncodeWalRecordEntry(record(i))));
      }
    }
  }
  wal_ = wal;
  return Status::OK();
}

Result<ProvenanceStore> ProvenanceStore::RecoverFromWal(
    storage::Env* env, const std::string& dir,
    storage::WalRecoveryReport* report,
    const crypto::SignatureVerifier* checkpoint_verifier) {
  // Checkpoint-bounded recovery: rebuild from the newest sealed snapshot
  // (if any) and replay only the WAL suffix past its horizon on top.
  ProvenanceStore store;
  storage::WalReaderOptions reader_options;
  uint64_t checkpoint_records = 0;
  Result<uint64_t> latest = LatestCheckpointHorizon(env, dir);
  if (latest.ok()) {
    if (checkpoint_verifier == nullptr) {
      return Status::FailedPrecondition(
          "a sealed checkpoint exists in " + dir +
          " but no verifier was supplied to check its seal");
    }
    PROVDB_ASSIGN_OR_RETURN(
        LoadedCheckpoint checkpoint,
        CheckpointReader::Load(env, CheckpointFileName(dir, latest.value()),
                               *checkpoint_verifier));
    reader_options.checkpoint_horizon = checkpoint.manifest.wal_horizon;
    checkpoint_records = checkpoint.manifest.live_records;
    store = std::move(checkpoint.store);
  } else if (latest.status().code() != StatusCode::kNotFound) {
    return latest.status();
  }

  PROVDB_ASSIGN_OR_RETURN(storage::WalReader reader,
                          storage::WalReader::Open(env, dir, reader_options));
  if (report != nullptr) {
    *report = reader.report();
    report->checkpoint_horizon = reader_options.checkpoint_horizon;
    report->checkpoint_records = checkpoint_records;
  }
  // Replay typed WAL entries (not LoadFromLog, whose snapshot files carry
  // bare records): appends re-add, prune markers re-prune, so the
  // recovered store converges to the pre-crash state instead of
  // resurrecting pruned history.
  Status status = reader.log().ForEach([&](uint64_t, ByteView payload) {
    if (payload.empty()) {
      return Status::Corruption("empty WAL entry");
    }
    switch (payload[0]) {
      case static_cast<uint8_t>(WalEntryType::kRecord): {
        PROVDB_ASSIGN_OR_RETURN(ProvenanceRecord rec,
                                DecodeRecord(payload.subview(1)));
        return store.AddRecord(std::move(rec)).status();
      }
      case static_cast<uint8_t>(WalEntryType::kPrune): {
        VarintReader entry(payload.subview(1));
        PROVDB_ASSIGN_OR_RETURN(uint64_t id, entry.ReadVarint64());
        return store.PruneObject(id).status();
      }
      default:
        return Status::Corruption("unknown WAL entry type " +
                                  std::to_string(payload[0]));
    }
  });
  if (!status.ok()) {
    return status;
  }
  return store;
}

}  // namespace provdb::provenance
