#ifndef PROVDB_PROVENANCE_TRACKED_RELATIONAL_H_
#define PROVDB_PROVENANCE_TRACKED_RELATIONAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "crypto/pki.h"
#include "provenance/tracked_database.h"
#include "storage/value.h"

namespace provdb::provenance {

/// Relational convenience layer over TrackedDatabase: the §5.1 depth-4
/// schema (database → tables → rows → cells) with named tables and
/// columns, where every mutation is attributed to a participant and emits
/// integrity-checksummed provenance (including inherited records).
///
///   TrackedRelationalDatabase db("trial", creator);
///   auto t   = db.CreateTable(alice, "patients", {"age", "weight"});
///   auto row = db.InsertRow(alice, *t, {Value::Int(44), Value::Double(81)});
///   db.UpdateCell(bob, *row, 0, Value::Int(45));
///
/// Row-level operations run as complex operations (§4.4), so inserting a
/// row emits one record per new object plus the inherited table/root
/// records — not one record per cell per ancestor.
class TrackedRelationalDatabase {
 public:
  /// Creates the database root (attributed to `creator`).
  TrackedRelationalDatabase(const std::string& name,
                            const crypto::Participant& creator,
                            TrackedDatabaseOptions options = {});

  TrackedDatabase& tracked() { return db_; }
  const TrackedDatabase& tracked() const { return db_; }
  storage::ObjectId root() const { return root_; }

  /// Creates an empty table with the given column schema.
  Result<storage::ObjectId> CreateTable(const crypto::Participant& p,
                                        const std::string& table_name,
                                        std::vector<std::string> columns);

  /// Inserts a row (one cell per column) as a single complex operation.
  Result<storage::ObjectId> InsertRow(const crypto::Participant& p,
                                      storage::ObjectId table,
                                      const std::vector<storage::Value>& cells);

  /// Updates one cell (primitive operation with inheritance).
  Status UpdateCell(const crypto::Participant& p, storage::ObjectId row,
                    const std::string& column, const storage::Value& value);
  Status UpdateCell(const crypto::Participant& p, storage::ObjectId row,
                    size_t column_index, const storage::Value& value);

  /// Deletes a whole row (cells first) as a single complex operation.
  Status DeleteRow(const crypto::Participant& p, storage::ObjectId row);

  /// Lookup helpers.
  Result<storage::ObjectId> TableId(const std::string& table_name) const;
  Result<size_t> ColumnIndex(storage::ObjectId table,
                             const std::string& column) const;
  Result<storage::ObjectId> CellId(storage::ObjectId row,
                                   size_t column_index) const;
  Result<storage::Value> GetCell(storage::ObjectId row,
                                 size_t column_index) const;
  Result<std::vector<storage::ObjectId>> RowsOf(storage::ObjectId table) const;

  /// Ships the whole database (or any granularity) to a recipient.
  Result<RecipientBundle> Export(storage::ObjectId subject) {
    return db_.ExportForRecipient(subject);
  }

 private:
  Result<storage::ObjectId> TableOf(storage::ObjectId row) const;

  TrackedDatabase db_;
  storage::ObjectId root_;
  std::map<std::string, storage::ObjectId> tables_by_name_;
  std::map<storage::ObjectId, std::vector<std::string>> columns_by_table_;
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_TRACKED_RELATIONAL_H_
