#include "provenance/bundle.h"

#include <algorithm>
#include <map>

#include "common/varint.h"
#include "provenance/serialization.h"
#include "provenance/subtree_hasher.h"

namespace provdb::provenance {

Result<SubtreeSnapshot> SubtreeSnapshot::Capture(
    const storage::TreeStore& tree, storage::ObjectId root) {
  SubtreeSnapshot snapshot;
  snapshot.root_ = root;
  PROVDB_RETURN_IF_ERROR(
      tree.VisitSubtree(root, [&](const storage::TreeNode& node, size_t) {
        Node copy;
        copy.id = node.id;
        copy.value = node.value;
        copy.parent = node.id == root ? storage::kInvalidObjectId : node.parent;
        snapshot.nodes_.push_back(std::move(copy));
        return Status::OK();
      }));
  return snapshot;
}

Result<crypto::Digest> SubtreeSnapshot::Hash(crypto::HashAlgorithm alg) const {
  if (nodes_.empty()) {
    return Status::FailedPrecondition("empty snapshot has no hash");
  }
  // Rebuild sorted child lists, then hash bottom-up.
  std::map<storage::ObjectId, const Node*> by_id;
  std::map<storage::ObjectId, std::vector<storage::ObjectId>> children;
  for (const Node& node : nodes_) {
    if (!by_id.emplace(node.id, &node).second) {
      return Status::Corruption("duplicate node id in snapshot");
    }
  }
  for (const Node& node : nodes_) {
    if (node.id == root_) {
      continue;
    }
    if (by_id.count(node.parent) == 0) {
      return Status::Corruption("snapshot node " + std::to_string(node.id) +
                                " has dangling parent");
    }
    children[node.parent].push_back(node.id);
  }
  for (auto& [id, kids] : children) {
    std::sort(kids.begin(), kids.end());
  }

  // Iterative post-order from the root.
  struct Frame {
    storage::ObjectId id;
    size_t next_child = 0;
    std::vector<crypto::Digest> child_hashes;
  };
  std::vector<Frame> stack;
  stack.push_back({root_, 0, {}});
  crypto::Digest result;
  size_t visited = 0;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    auto kids_it = children.find(frame.id);
    size_t num_kids = kids_it == children.end() ? 0 : kids_it->second.size();
    if (frame.next_child < num_kids) {
      stack.push_back({kids_it->second[frame.next_child++], 0, {}});
      continue;
    }
    auto node_it = by_id.find(frame.id);
    if (node_it == by_id.end()) {
      return Status::Corruption("snapshot missing node " +
                                std::to_string(frame.id));
    }
    crypto::Digest digest = HashTreeNode(alg, frame.id, node_it->second->value,
                                         frame.child_hashes);
    ++visited;
    stack.pop_back();
    if (stack.empty()) {
      result = digest;
    } else {
      stack.back().child_hashes.push_back(digest);
    }
  }
  if (visited != nodes_.size()) {
    return Status::Corruption(
        "snapshot has nodes unreachable from the root (cycle or orphan)");
  }
  return result;
}

Result<storage::Value> SubtreeSnapshot::ValueOf(storage::ObjectId id) const {
  for (const Node& node : nodes_) {
    if (node.id == id) {
      return node.value;
    }
  }
  return Status::NotFound("snapshot has no node " + std::to_string(id));
}

Status SubtreeSnapshot::TamperValue(storage::ObjectId id,
                                    storage::Value value) {
  for (Node& node : nodes_) {
    if (node.id == id) {
      node.value = std::move(value);
      return Status::OK();
    }
  }
  return Status::NotFound("snapshot has no node " + std::to_string(id));
}

void SubtreeSnapshot::TamperRootId(storage::ObjectId new_root) {
  for (Node& node : nodes_) {
    if (node.id == root_) {
      node.id = new_root;
    }
    if (node.parent == root_) {
      node.parent = new_root;
    }
  }
  root_ = new_root;
}

Bytes SubtreeSnapshot::Serialize() const {
  Bytes out;
  AppendVarint64(&out, root_);
  AppendVarint64(&out, nodes_.size());
  for (const Node& node : nodes_) {
    AppendVarint64(&out, node.id);
    AppendVarint64(&out, node.parent);
    node.value.CanonicalEncode(&out);
  }
  return out;
}

Result<SubtreeSnapshot> SubtreeSnapshot::Deserialize(ByteView data) {
  VarintReader reader(data);
  SubtreeSnapshot snapshot;
  PROVDB_ASSIGN_OR_RETURN(snapshot.root_, reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint64());
  if (count > reader.remaining()) {
    return Status::Corruption("snapshot node count exceeds payload");
  }
  snapshot.nodes_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Node node;
    PROVDB_ASSIGN_OR_RETURN(node.id, reader.ReadVarint64());
    PROVDB_ASSIGN_OR_RETURN(node.parent, reader.ReadVarint64());
    size_t consumed = 0;
    ByteView rest(data.data() + reader.position(),
                  data.size() - reader.position());
    PROVDB_ASSIGN_OR_RETURN(node.value,
                            storage::Value::CanonicalDecode(rest, &consumed));
    PROVDB_RETURN_IF_ERROR(reader.ReadRaw(consumed).status());
    snapshot.nodes_.push_back(std::move(node));
  }
  return snapshot;
}

Bytes RecipientBundle::Serialize() const {
  Bytes out;
  AppendVarint64(&out, subject);
  AppendLengthPrefixed(&out, data.Serialize());
  AppendVarint64(&out, records.size());
  for (const ProvenanceRecord& rec : records) {
    AppendLengthPrefixed(&out, EncodeRecord(rec));
  }
  return out;
}

Result<RecipientBundle> RecipientBundle::Deserialize(ByteView data) {
  VarintReader reader(data);
  RecipientBundle bundle;
  PROVDB_ASSIGN_OR_RETURN(bundle.subject, reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(Bytes snapshot_raw, reader.ReadLengthPrefixed());
  PROVDB_ASSIGN_OR_RETURN(bundle.data,
                          SubtreeSnapshot::Deserialize(snapshot_raw));
  PROVDB_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint64());
  if (count > reader.remaining()) {
    return Status::Corruption("bundle record count exceeds payload");
  }
  bundle.records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PROVDB_ASSIGN_OR_RETURN(Bytes rec_raw, reader.ReadLengthPrefixed());
    PROVDB_ASSIGN_OR_RETURN(ProvenanceRecord rec, DecodeRecord(rec_raw));
    bundle.records.push_back(std::move(rec));
  }
  return bundle;
}

}  // namespace provdb::provenance
