#ifndef PROVDB_PROVENANCE_QUERY_H_
#define PROVDB_PROVENANCE_QUERY_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "crypto/pki.h"
#include "provenance/provenance_store.h"
#include "provenance/record.h"
#include "provenance/snapshot.h"

namespace provdb::provenance {

/// Answers the questions data recipients actually ask of provenance —
/// "who touched this?", "what did it come from?", "what did participant p
/// do?" — over the verified record DAG. Queries operate on the same
/// ExtractProvenance closure the verifier checks, so query results are
/// covered by the integrity guarantees.
struct LineageSummary {
  /// Every participant that signed a record in the object's history.
  std::set<crypto::ParticipantId> participants;
  /// Objects whose state transitively contributed via aggregations
  /// (excluding the subject itself).
  std::set<storage::ObjectId> contributing_objects;
  uint64_t record_count = 0;
  uint64_t insert_count = 0;
  uint64_t update_count = 0;
  uint64_t aggregate_count = 0;
  uint64_t inherited_count = 0;
  SeqId max_seq_id = 0;

  std::string ToString() const;
};

/// Summarizes the full (transitive) history of `subject`.
///
/// The ProvenanceStore overloads below require a quiescent store (no
/// concurrent mutation for the call's duration — the store is
/// single-writer and these read its writer-current state). To query
/// while ingest is live, open a StoreSnapshot and use the snapshot
/// overloads: they read a pinned, immutable batch-boundary cut and
/// never race the writer (DESIGN.md §16).
Result<LineageSummary> SummarizeLineage(const ProvenanceStore& store,
                                        storage::ObjectId subject);
Result<LineageSummary> SummarizeLineage(const StoreSnapshot& snapshot,
                                        storage::ObjectId subject);

/// Record indices (into `store`) signed by `participant`, in store order.
std::vector<uint64_t> RecordsByParticipant(const ProvenanceStore& store,
                                           crypto::ParticipantId participant);

/// Snapshot variant: the records themselves (indices are per-shard in a
/// sharded deployment), in ascending (object id, seqID) order. Pointers
/// are valid while the snapshot is held.
std::vector<const ProvenanceRecord*> RecordsByParticipant(
    const StoreSnapshot& snapshot, crypto::ParticipantId participant);

/// True iff `participant` signed any record in `subject`'s transitive
/// history — e.g. "did PCP Pamela ever touch this submission?".
Result<bool> ParticipantTouched(const ProvenanceStore& store,
                                storage::ObjectId subject,
                                crypto::ParticipantId participant);
Result<bool> ParticipantTouched(const StoreSnapshot& snapshot,
                                storage::ObjectId subject,
                                crypto::ParticipantId participant);

/// The slice of `subject`'s own chain with from_seq <= seqID <= to_seq
/// (record copies, in seq order). Does not follow aggregation edges.
Result<std::vector<ProvenanceRecord>> HistorySlice(
    const ProvenanceStore& store, storage::ObjectId subject, SeqId from_seq,
    SeqId to_seq);
Result<std::vector<ProvenanceRecord>> HistorySlice(
    const StoreSnapshot& snapshot, storage::ObjectId subject, SeqId from_seq,
    SeqId to_seq);

/// The direct aggregation inputs of `subject` (empty when the subject was
/// not produced by an aggregation).
Result<std::vector<ObjectState>> DirectSources(const ProvenanceStore& store,
                                               storage::ObjectId subject);
Result<std::vector<ObjectState>> DirectSources(const StoreSnapshot& snapshot,
                                               storage::ObjectId subject);

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_QUERY_H_
