#include "provenance/merkle_proof.h"

#include "common/varint.h"
#include "provenance/subtree_hasher.h"

namespace provdb::provenance {

size_t InclusionProof::SiblingCount() const {
  size_t count = 0;
  for (const ProofStep& step : steps) {
    count += step.left_siblings.size() + step.right_siblings.size();
  }
  return count;
}

Bytes InclusionProof::Serialize() const {
  Bytes out;
  AppendVarint64(&out, subject);
  AppendLengthPrefixed(&out, subject_hash.view());
  AppendVarint64(&out, steps.size());
  for (const ProofStep& step : steps) {
    AppendVarint64(&out, step.parent_id);
    step.parent_value.CanonicalEncode(&out);
    AppendVarint64(&out, step.left_siblings.size());
    for (const crypto::Digest& d : step.left_siblings) {
      AppendLengthPrefixed(&out, d.view());
    }
    AppendVarint64(&out, step.right_siblings.size());
    for (const crypto::Digest& d : step.right_siblings) {
      AppendLengthPrefixed(&out, d.view());
    }
  }
  return out;
}

Result<InclusionProof> InclusionProof::Deserialize(ByteView data) {
  VarintReader reader(data);
  InclusionProof proof;
  PROVDB_ASSIGN_OR_RETURN(proof.subject, reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(Bytes hash_raw, reader.ReadLengthPrefixed());
  proof.subject_hash = crypto::Digest::FromBytes(hash_raw);
  PROVDB_ASSIGN_OR_RETURN(uint64_t num_steps, reader.ReadVarint64());
  if (num_steps > reader.remaining()) {
    return Status::Corruption("proof step count exceeds payload");
  }
  proof.steps.reserve(num_steps);
  for (uint64_t s = 0; s < num_steps; ++s) {
    ProofStep step;
    PROVDB_ASSIGN_OR_RETURN(step.parent_id, reader.ReadVarint64());
    size_t consumed = 0;
    ByteView rest(data.data() + reader.position(),
                  data.size() - reader.position());
    PROVDB_ASSIGN_OR_RETURN(step.parent_value,
                            storage::Value::CanonicalDecode(rest, &consumed));
    PROVDB_RETURN_IF_ERROR(reader.ReadRaw(consumed).status());
    for (std::vector<crypto::Digest>* side :
         {&step.left_siblings, &step.right_siblings}) {
      PROVDB_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint64());
      if (count > reader.remaining()) {
        return Status::Corruption("sibling count exceeds payload");
      }
      side->reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        PROVDB_ASSIGN_OR_RETURN(Bytes raw, reader.ReadLengthPrefixed());
        side->push_back(crypto::Digest::FromBytes(raw));
      }
    }
    proof.steps.push_back(std::move(step));
  }
  return proof;
}

Result<InclusionProof> BuildInclusionProof(const storage::TreeStore& tree,
                                           storage::ObjectId target,
                                           storage::ObjectId root,
                                           crypto::HashAlgorithm alg) {
  PROVDB_RETURN_IF_ERROR(tree.GetNode(root).status());
  PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* target_node,
                          tree.GetNode(target));

  // The target must lie inside subtree(root).
  {
    bool found = target == root;
    for (storage::ObjectId anc : tree.AncestorsOf(target)) {
      if (anc == root) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "target " + std::to_string(target) + " is not inside subtree(" +
          std::to_string(root) + ")");
    }
  }

  SubtreeHasher hasher(&tree, alg);
  InclusionProof proof;
  proof.subject = target;
  PROVDB_ASSIGN_OR_RETURN(proof.subject_hash, hasher.HashSubtreeBasic(target));
  (void)target_node;

  storage::ObjectId current = target;
  while (current != root) {
    PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* node,
                            tree.GetNode(current));
    storage::ObjectId parent_id = node->parent;
    PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* parent,
                            tree.GetNode(parent_id));

    ProofStep step;
    step.parent_id = parent_id;
    step.parent_value = parent->value;
    bool before = true;
    for (storage::ObjectId child : parent->children) {
      if (child == current) {
        before = false;
        continue;
      }
      PROVDB_ASSIGN_OR_RETURN(crypto::Digest sibling,
                              hasher.HashSubtreeBasic(child));
      (before ? step.left_siblings : step.right_siblings)
          .push_back(sibling);
    }
    proof.steps.push_back(std::move(step));
    current = parent_id;
  }
  return proof;
}

Status VerifyInclusionProof(const InclusionProof& proof,
                            const crypto::Digest& trusted_root_hash,
                            crypto::HashAlgorithm alg) {
  crypto::Digest running = proof.subject_hash;
  for (const ProofStep& step : proof.steps) {
    std::vector<crypto::Digest> children;
    children.reserve(step.left_siblings.size() + 1 +
                     step.right_siblings.size());
    children.insert(children.end(), step.left_siblings.begin(),
                    step.left_siblings.end());
    children.push_back(running);
    children.insert(children.end(), step.right_siblings.begin(),
                    step.right_siblings.end());
    running = HashTreeNode(alg, step.parent_id, step.parent_value, children);
  }
  if (!(running == trusted_root_hash)) {
    return Status::VerificationFailed(
        "inclusion proof does not reproduce the trusted root digest");
  }
  return Status::OK();
}

Status VerifyLeafInclusion(const InclusionProof& proof,
                           const storage::Value& leaf_value,
                           const crypto::Digest& trusted_root_hash,
                           crypto::HashAlgorithm alg) {
  crypto::Digest leaf_hash =
      HashTreeNode(alg, proof.subject, leaf_value, {});
  if (!(leaf_hash == proof.subject_hash)) {
    return Status::VerificationFailed(
        "claimed leaf value does not match the proof's subject hash");
  }
  return VerifyInclusionProof(proof, trusted_root_hash, alg);
}

}  // namespace provdb::provenance
