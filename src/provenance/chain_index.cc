#include "provenance/chain_index.h"

namespace provdb::provenance {

const ChainIndex::Leaf* ChainIndex::Find(const Node* root,
                                         storage::ObjectId key) {
  const Node* node = root;
  unsigned shift = 0;
  while (node != nullptr) {
    uintptr_t entry = node->child[NibbleAt(key, shift)];
    if (entry == 0) {
      return nullptr;
    }
    if (IsLeaf(entry)) {
      const Leaf* leaf = AsLeaf(entry);
      return leaf->key == key ? leaf : nullptr;
    }
    node = AsNode(entry);
    shift += 4;
  }
  return nullptr;
}

void ChainIndex::RetireOrDelete(EpochRetired* node, EpochDomain* domain) {
  if (domain != nullptr) {
    domain->Retire(node);
  } else {
    delete node;
  }
}

ChainIndex::Node* ChainIndex::BuildSplit(const Leaf* existing, Leaf* fresh,
                                         unsigned shift) {
  // Two distinct keys: descend until their nibbles diverge (guaranteed
  // within 64/4 = 16 levels), then hang both leaves off that node.
  Node* node = new Node;
  size_t a = NibbleAt(existing->key, shift);
  size_t b = NibbleAt(fresh->key, shift);
  if (a != b) {
    node->child[a] = Tag(existing);
    node->child[b] = Tag(fresh);
  } else {
    node->child[a] = Tag(BuildSplit(existing, fresh, shift + 4));
  }
  return node;
}

const ChainIndex::Node* ChainIndex::InsertRec(const Node* node, Leaf* leaf,
                                              unsigned shift,
                                              EpochDomain* domain) {
  Node* copy = new Node;
  if (node != nullptr) {
    for (size_t i = 0; i < 16; ++i) {
      copy->child[i] = node->child[i];
    }
  }
  const size_t idx = NibbleAt(leaf->key, shift);
  const uintptr_t entry = copy->child[idx];
  if (entry == 0) {
    copy->child[idx] = Tag(leaf);
  } else if (IsLeaf(entry)) {
    const Leaf* existing = AsLeaf(entry);
    if (existing->key == leaf->key) {
      copy->child[idx] = Tag(leaf);
      // The old leaf is unlinked from the new version; readers pinned on
      // an older root still reach it. Its chain cells stay alive — the
      // new leaf links to them or the caller retires them (see header).
      RetireOrDelete(const_cast<Leaf*>(existing), domain);
    } else {
      copy->child[idx] = Tag(BuildSplit(existing, leaf, shift + 4));
    }
  } else {
    copy->child[idx] =
        Tag(InsertRec(AsNode(entry), leaf, shift + 4, domain));
    RetireOrDelete(const_cast<Node*>(AsNode(entry)), domain);
  }
  return copy;
}

const ChainIndex::Node* ChainIndex::Insert(const Node* root, Leaf* leaf,
                                           EpochDomain* domain) {
  const Node* new_root = InsertRec(root, leaf, 0, domain);
  if (root != nullptr) {
    RetireOrDelete(const_cast<Node*>(root), domain);
  }
  return new_root;
}

void ChainIndex::FreeAll(const Node* root) {
  if (root == nullptr) {
    return;
  }
  for (uintptr_t entry : root->child) {
    if (entry == 0) {
      continue;
    }
    if (IsLeaf(entry)) {
      const Leaf* leaf = AsLeaf(entry);
      const ChainNode* cell = leaf->head;
      while (cell != nullptr) {
        const ChainNode* prev = cell->prev;
        delete cell;
        cell = prev;
      }
      delete leaf;
    } else {
      FreeAll(AsNode(entry));
    }
  }
  delete root;
}

}  // namespace provdb::provenance
