#ifndef PROVDB_PROVENANCE_BUNDLE_H_
#define PROVDB_PROVENANCE_BUNDLE_H_

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/digest.h"
#include "crypto/hash.h"
#include "provenance/record.h"
#include "storage/tree_store.h"
#include "storage/value.h"

namespace provdb::provenance {

/// A standalone copy of a (compound) data object — what a data recipient
/// actually receives, detached from the live database. Preserves object
/// ids and structure so its recursive hash equals the live subtree's hash.
class SubtreeSnapshot {
 public:
  struct Node {
    storage::ObjectId id = storage::kInvalidObjectId;
    storage::Value value;
    storage::ObjectId parent = storage::kInvalidObjectId;  // 0 for the root
  };

  SubtreeSnapshot() = default;

  /// Captures subtree(root) from a live tree (pre-order node list).
  static Result<SubtreeSnapshot> Capture(const storage::TreeStore& tree,
                                         storage::ObjectId root);

  storage::ObjectId root() const { return root_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  bool empty() const { return nodes_.empty(); }

  /// Recursive compound hash (identical to SubtreeHasher over the live
  /// tree). Fails on malformed snapshots (dangling parents, cycles).
  Result<crypto::Digest> Hash(crypto::HashAlgorithm alg) const;

  /// Value of the node `id`, or kNotFound.
  Result<storage::Value> ValueOf(storage::ObjectId id) const;

  /// Replaces the value of node `id` *without* any provenance — this is
  /// the attack primitive behind R4 tests. Honest code never calls this.
  Status TamperValue(storage::ObjectId id, storage::Value value);

  /// Rewrites the root id (and children's parent pointers) — the
  /// re-attribution attack primitive behind R5 tests.
  void TamperRootId(storage::ObjectId new_root);

  Bytes Serialize() const;
  static Result<SubtreeSnapshot> Deserialize(ByteView data);

 private:
  storage::ObjectId root_ = storage::kInvalidObjectId;
  std::vector<Node> nodes_;
};

/// Everything a data recipient obtains: the data object plus its
/// provenance object (the record DAG). ProvenanceVerifier consumes this.
struct RecipientBundle {
  storage::ObjectId subject = storage::kInvalidObjectId;
  SubtreeSnapshot data;
  std::vector<ProvenanceRecord> records;

  Bytes Serialize() const;
  static Result<RecipientBundle> Deserialize(ByteView data);
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_BUNDLE_H_
