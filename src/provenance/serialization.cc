#include "provenance/serialization.h"

#include "common/varint.h"

namespace provdb::provenance {

namespace {

constexpr uint8_t kRecordFormatVersion = 1;

}  // namespace

Bytes EncodeRecord(const ProvenanceRecord& record) {
  Bytes out;
  AppendByte(&out, kRecordFormatVersion);
  AppendVarint64(&out, record.seq_id);
  AppendVarint64(&out, record.participant);
  AppendByte(&out, static_cast<uint8_t>(record.op));
  AppendByte(&out, record.inherited ? 1 : 0);

  AppendVarint64(&out, record.inputs.size());
  for (const ObjectState& in : record.inputs) {
    AppendVarint64(&out, in.object_id);
    AppendLengthPrefixed(&out, in.state_hash.view());
  }
  AppendVarint64(&out, record.output.object_id);
  AppendLengthPrefixed(&out, record.output.state_hash.view());
  AppendLengthPrefixed(&out, record.checksum);

  AppendByte(&out, record.has_output_snapshot ? 1 : 0);
  if (record.has_output_snapshot) {
    record.output_snapshot.CanonicalEncode(&out);
  }
  return out;
}

Result<ProvenanceRecord> DecodeRecord(ByteView data) {
  if (data.empty() || data[0] != kRecordFormatVersion) {
    return Status::Corruption("unknown provenance record format version");
  }
  VarintReader reader(data.subview(1));
  ProvenanceRecord record;

  PROVDB_ASSIGN_OR_RETURN(record.seq_id, reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(record.participant, reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(Bytes op_raw, reader.ReadRaw(1));
  if (op_raw[0] > static_cast<uint8_t>(OperationType::kAggregate)) {
    return Status::Corruption("invalid operation type tag");
  }
  record.op = static_cast<OperationType>(op_raw[0]);
  PROVDB_ASSIGN_OR_RETURN(Bytes inh_raw, reader.ReadRaw(1));
  record.inherited = inh_raw[0] != 0;

  PROVDB_ASSIGN_OR_RETURN(uint64_t num_inputs, reader.ReadVarint64());
  if (num_inputs > reader.remaining()) {
    return Status::Corruption("input count exceeds record size");
  }
  record.inputs.reserve(num_inputs);
  for (uint64_t i = 0; i < num_inputs; ++i) {
    ObjectState state;
    PROVDB_ASSIGN_OR_RETURN(state.object_id, reader.ReadVarint64());
    PROVDB_ASSIGN_OR_RETURN(Bytes hash, reader.ReadLengthPrefixed());
    state.state_hash = crypto::Digest::FromBytes(hash);
    record.inputs.push_back(std::move(state));
  }

  PROVDB_ASSIGN_OR_RETURN(record.output.object_id, reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(Bytes out_hash, reader.ReadLengthPrefixed());
  record.output.state_hash = crypto::Digest::FromBytes(out_hash);
  PROVDB_ASSIGN_OR_RETURN(record.checksum, reader.ReadLengthPrefixed());

  PROVDB_ASSIGN_OR_RETURN(Bytes snap_flag, reader.ReadRaw(1));
  record.has_output_snapshot = snap_flag[0] != 0;
  if (record.has_output_snapshot) {
    size_t consumed = 0;
    ByteView rest(data.data() + 1 + reader.position(),
                  data.size() - 1 - reader.position());
    PROVDB_ASSIGN_OR_RETURN(record.output_snapshot,
                            storage::Value::CanonicalDecode(rest, &consumed));
  }
  return record;
}

Bytes EncodeWalRecordEntry(const ProvenanceRecord& record) {
  Bytes out;
  AppendByte(&out, static_cast<uint8_t>(WalEntryType::kRecord));
  AppendBytes(&out, EncodeRecord(record));
  return out;
}

Bytes EncodeWalPruneEntry(storage::ObjectId id) {
  Bytes out;
  AppendByte(&out, static_cast<uint8_t>(WalEntryType::kPrune));
  AppendVarint64(&out, id);
  return out;
}

}  // namespace provdb::provenance
