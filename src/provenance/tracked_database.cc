#include "provenance/tracked_database.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "provenance/checkpoint.h"

namespace provdb::provenance {

std::string_view HashingModeName(HashingMode mode) {
  switch (mode) {
    case HashingMode::kBasic:
      return "basic";
    case HashingMode::kEconomical:
      return "economical";
  }
  return "unknown";
}

void OperationMetrics::Accumulate(const OperationMetrics& other) {
  hash_seconds += other.hash_seconds;
  sign_seconds += other.sign_seconds;
  store_seconds += other.store_seconds;
  checksums += other.checksums;
  nodes_hashed += other.nodes_hashed;
}

TrackedDatabase::TrackedDatabase(TrackedDatabaseOptions options)
    : options_(options),
      engine_(options.hash_algorithm),
      basic_hasher_(&tree_, options.hash_algorithm),
      economical_hasher_(&tree_, options.hash_algorithm) {}

storage::TreeStore& TrackedDatabase::bootstrap_tree() { return tree_; }

Result<crypto::Digest> TrackedDatabase::ComputeHash(storage::ObjectId id,
                                                    OperationMetrics* metrics) {
  Stopwatch watch;
  Result<crypto::Digest> result = Status::Internal("unreachable");
  uint64_t nodes_before;
  if (options_.hashing_mode == HashingMode::kBasic) {
    nodes_before = basic_hasher_.nodes_hashed();
    result = basic_hasher_.HashSubtreeBasic(id);
    metrics->nodes_hashed += basic_hasher_.nodes_hashed() - nodes_before;
  } else {
    nodes_before = economical_hasher_.nodes_hashed();
    result = economical_hasher_.HashSubtree(id);
    metrics->nodes_hashed += economical_hasher_.nodes_hashed() - nodes_before;
  }
  metrics->hash_seconds += watch.ElapsedSeconds();
  return result;
}

Status TrackedDatabase::ComputeAllHashes(
    storage::ObjectId root,
    std::unordered_map<storage::ObjectId, crypto::Digest>* out,
    OperationMetrics* metrics) {
  Stopwatch watch;
  struct Frame {
    storage::ObjectId id;
    size_t next_child = 0;
    std::vector<crypto::Digest> child_hashes;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0, {}});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* node,
                            tree_.GetNode(frame.id));
    if (frame.next_child < node->children.size()) {
      stack.push_back({node->children[frame.next_child++], 0, {}});
      continue;
    }
    crypto::Digest digest =
        basic_hasher_.HashNode(node->id, node->value, frame.child_hashes);
    ++metrics->nodes_hashed;
    (*out)[frame.id] = digest;
    stack.pop_back();
    if (!stack.empty()) {
      stack.back().child_hashes.push_back(digest);
    }
  }
  metrics->hash_seconds += watch.ElapsedSeconds();
  return Status::OK();
}

void TrackedDatabase::InvalidatePath(storage::ObjectId id) {
  if (options_.hashing_mode == HashingMode::kEconomical) {
    economical_hasher_.Invalidate(id);
  }
}

Status TrackedDatabase::EmitRecord(const crypto::Participant& p,
                                   OperationType op, bool inherited,
                                   storage::ObjectId id,
                                   const crypto::Digest* pre_hash,
                                   const crypto::Digest& post_hash,
                                   const storage::Value* snapshot,
                                   OperationMetrics* metrics) {
  LocalChainState::Tail tail = chains_.Get(id);

  ProvenanceRecord record;
  record.participant = p.id();
  record.op = op;
  record.inherited = inherited;
  record.output = ObjectState{id, post_hash};
  if (snapshot != nullptr) {
    record.output_snapshot = *snapshot;
    record.has_output_snapshot = true;
  }

  Bytes payload;
  if (op == OperationType::kInsert) {
    record.seq_id = 0;
    payload = engine_.BuildInsertPayload(post_hash);
  } else {
    // Update (actual or inherited). Bootstrap objects start their chain at
    // seq 0 with an empty previous-checksum slot.
    record.seq_id = tail.exists ? tail.seq_id + 1 : 0;
    crypto::Digest in_hash =
        pre_hash != nullptr ? *pre_hash : crypto::Digest();
    record.inputs.push_back(ObjectState{id, in_hash});
    payload = engine_.BuildUpdatePayload(in_hash, post_hash, tail.checksum);
  }

  Stopwatch sign_watch;
  PROVDB_ASSIGN_OR_RETURN(record.checksum,
                          engine_.SignPayload(p.signer(), payload));
  metrics->sign_seconds += sign_watch.ElapsedSeconds();

  Stopwatch store_watch;
  SeqId seq = record.seq_id;
  Bytes checksum_copy = record.checksum;
  PROVDB_RETURN_IF_ERROR(store_.AddRecord(std::move(record)).status());
  chains_.Set(id, seq, std::move(checksum_copy));
  metrics->store_seconds += store_watch.ElapsedSeconds();
  ++metrics->checksums;
  return Status::OK();
}

// ---------------------------------------------------------------------
// Primitive operations

Result<storage::ObjectId> TrackedDatabase::Insert(const crypto::Participant& p,
                                                  const storage::Value& value,
                                                  storage::ObjectId parent) {
  any_tracked_op_ = true;
  if (complex_ != nullptr) {
    if (complex_->participant->id() != p.id()) {
      return Status::FailedPrecondition(
          "complex operation belongs to another participant");
    }
    if (parent != storage::kInvalidObjectId) {
      PROVDB_RETURN_IF_ERROR(CapturePreHashes(parent));
    }
    PROVDB_ASSIGN_OR_RETURN(storage::ObjectId id, tree_.Insert(value, parent));
    InvalidatePath(id);
    complex_->inserted.insert(id);
    complex_->touched.insert(id);
    complex_->direct.insert(id);
    for (storage::ObjectId anc : tree_.AncestorsOf(id)) {
      complex_->touched.insert(anc);
    }
    return id;
  }

  OperationMetrics metrics;
  std::vector<storage::ObjectId> ancestors;
  std::vector<crypto::Digest> ancestor_pre;
  if (parent != storage::kInvalidObjectId) {
    PROVDB_RETURN_IF_ERROR(tree_.GetNode(parent).status());
    ancestors.push_back(parent);
    for (storage::ObjectId anc : tree_.AncestorsOf(parent)) {
      ancestors.push_back(anc);
    }
    if (options_.hashing_mode == HashingMode::kBasic) {
      std::unordered_map<storage::ObjectId, crypto::Digest> all;
      PROVDB_RETURN_IF_ERROR(
          ComputeAllHashes(ancestors.back(), &all, &metrics));
      for (storage::ObjectId anc : ancestors) {
        ancestor_pre.push_back(all.at(anc));
      }
    } else {
      for (storage::ObjectId anc : ancestors) {
        PROVDB_ASSIGN_OR_RETURN(crypto::Digest d, ComputeHash(anc, &metrics));
        ancestor_pre.push_back(d);
      }
    }
  }

  PROVDB_ASSIGN_OR_RETURN(storage::ObjectId id, tree_.Insert(value, parent));
  InvalidatePath(id);

  // Post-state hashes: the new object and every ancestor.
  crypto::Digest self_post;
  std::vector<crypto::Digest> ancestor_post(ancestors.size());
  if (options_.hashing_mode == HashingMode::kBasic && !ancestors.empty()) {
    std::unordered_map<storage::ObjectId, crypto::Digest> all;
    PROVDB_RETURN_IF_ERROR(ComputeAllHashes(ancestors.back(), &all, &metrics));
    self_post = all.at(id);
    for (size_t i = 0; i < ancestors.size(); ++i) {
      ancestor_post[i] = all.at(ancestors[i]);
    }
  } else {
    PROVDB_ASSIGN_OR_RETURN(self_post, ComputeHash(id, &metrics));
    for (size_t i = 0; i < ancestors.size(); ++i) {
      PROVDB_ASSIGN_OR_RETURN(ancestor_post[i],
                              ComputeHash(ancestors[i], &metrics));
    }
  }

  const storage::Value* snapshot =
      options_.store_value_snapshots ? &value : nullptr;
  PROVDB_RETURN_IF_ERROR(EmitRecord(p, OperationType::kInsert,
                                    /*inherited=*/false, id, nullptr,
                                    self_post, snapshot, &metrics));
  for (size_t i = 0; i < ancestors.size(); ++i) {
    PROVDB_RETURN_IF_ERROR(EmitRecord(p, OperationType::kUpdate,
                                      /*inherited=*/true, ancestors[i],
                                      &ancestor_pre[i], ancestor_post[i],
                                      nullptr, &metrics));
  }
  FinishOperation(metrics);
  return id;
}

Status TrackedDatabase::Update(const crypto::Participant& p,
                               storage::ObjectId id,
                               const storage::Value& value) {
  any_tracked_op_ = true;
  PROVDB_RETURN_IF_ERROR(tree_.GetNode(id).status());
  if (complex_ != nullptr) {
    if (complex_->participant->id() != p.id()) {
      return Status::FailedPrecondition(
          "complex operation belongs to another participant");
    }
    PROVDB_RETURN_IF_ERROR(CapturePreHashes(id));
    PROVDB_RETURN_IF_ERROR(tree_.Update(id, value));
    InvalidatePath(id);
    complex_->touched.insert(id);
    complex_->direct.insert(id);
    for (storage::ObjectId anc : tree_.AncestorsOf(id)) {
      complex_->touched.insert(anc);
    }
    return Status::OK();
  }

  OperationMetrics metrics;
  std::vector<storage::ObjectId> ancestors = tree_.AncestorsOf(id);

  crypto::Digest self_pre;
  std::vector<crypto::Digest> ancestor_pre(ancestors.size());
  PROVDB_ASSIGN_OR_RETURN(storage::ObjectId tree_root, tree_.RootOf(id));
  if (options_.hashing_mode == HashingMode::kBasic) {
    std::unordered_map<storage::ObjectId, crypto::Digest> all;
    PROVDB_RETURN_IF_ERROR(ComputeAllHashes(tree_root, &all, &metrics));
    self_pre = all.at(id);
    for (size_t i = 0; i < ancestors.size(); ++i) {
      ancestor_pre[i] = all.at(ancestors[i]);
    }
  } else {
    // Hash the whole tree once (mostly cache hits when warm), then read
    // the needed digests.
    PROVDB_RETURN_IF_ERROR(ComputeHash(tree_root, &metrics).status());
    PROVDB_ASSIGN_OR_RETURN(self_pre, economical_hasher_.CachedDigest(id));
    for (size_t i = 0; i < ancestors.size(); ++i) {
      PROVDB_ASSIGN_OR_RETURN(ancestor_pre[i],
                              economical_hasher_.CachedDigest(ancestors[i]));
    }
  }

  PROVDB_RETURN_IF_ERROR(tree_.Update(id, value));
  InvalidatePath(id);

  crypto::Digest self_post;
  std::vector<crypto::Digest> ancestor_post(ancestors.size());
  if (options_.hashing_mode == HashingMode::kBasic) {
    std::unordered_map<storage::ObjectId, crypto::Digest> all;
    PROVDB_RETURN_IF_ERROR(ComputeAllHashes(tree_root, &all, &metrics));
    self_post = all.at(id);
    for (size_t i = 0; i < ancestors.size(); ++i) {
      ancestor_post[i] = all.at(ancestors[i]);
    }
  } else {
    PROVDB_RETURN_IF_ERROR(ComputeHash(tree_root, &metrics).status());
    PROVDB_ASSIGN_OR_RETURN(self_post, economical_hasher_.CachedDigest(id));
    for (size_t i = 0; i < ancestors.size(); ++i) {
      PROVDB_ASSIGN_OR_RETURN(ancestor_post[i],
                              economical_hasher_.CachedDigest(ancestors[i]));
    }
  }

  const storage::Value* snapshot =
      options_.store_value_snapshots ? &value : nullptr;
  PROVDB_RETURN_IF_ERROR(EmitRecord(p, OperationType::kUpdate,
                                    /*inherited=*/false, id, &self_pre,
                                    self_post, snapshot, &metrics));
  for (size_t i = 0; i < ancestors.size(); ++i) {
    PROVDB_RETURN_IF_ERROR(EmitRecord(p, OperationType::kUpdate,
                                      /*inherited=*/true, ancestors[i],
                                      &ancestor_pre[i], ancestor_post[i],
                                      nullptr, &metrics));
  }
  FinishOperation(metrics);
  return Status::OK();
}

Status TrackedDatabase::Delete(const crypto::Participant& p,
                               storage::ObjectId id) {
  any_tracked_op_ = true;
  PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* node, tree_.GetNode(id));
  if (!node->is_leaf()) {
    return Status::FailedPrecondition(
        "only leaf objects can be deleted by the primitive Delete");
  }
  if (complex_ != nullptr) {
    if (complex_->participant->id() != p.id()) {
      return Status::FailedPrecondition(
          "complex operation belongs to another participant");
    }
    PROVDB_RETURN_IF_ERROR(CapturePreHashes(id));
    storage::ObjectId parent = node->parent;
    std::vector<storage::ObjectId> ancestors = tree_.AncestorsOf(id);
    PROVDB_RETURN_IF_ERROR(tree_.Delete(id));
    if (options_.hashing_mode == HashingMode::kEconomical) {
      economical_hasher_.Forget(id);
      if (parent != storage::kInvalidObjectId) {
        economical_hasher_.Invalidate(parent);
      }
    }
    complex_->deleted.insert(id);
    complex_->inserted.erase(id);
    complex_->touched.erase(id);
    complex_->direct.erase(id);
    for (storage::ObjectId anc : ancestors) {
      complex_->touched.insert(anc);
    }
    return Status::OK();
  }

  OperationMetrics metrics;
  std::vector<storage::ObjectId> ancestors = tree_.AncestorsOf(id);
  storage::ObjectId parent = node->parent;

  std::vector<crypto::Digest> ancestor_pre(ancestors.size());
  if (!ancestors.empty()) {
    if (options_.hashing_mode == HashingMode::kBasic) {
      std::unordered_map<storage::ObjectId, crypto::Digest> all;
      PROVDB_RETURN_IF_ERROR(
          ComputeAllHashes(ancestors.back(), &all, &metrics));
      for (size_t i = 0; i < ancestors.size(); ++i) {
        ancestor_pre[i] = all.at(ancestors[i]);
      }
    } else {
      PROVDB_RETURN_IF_ERROR(
          ComputeHash(ancestors.back(), &metrics).status());
      for (size_t i = 0; i < ancestors.size(); ++i) {
        PROVDB_ASSIGN_OR_RETURN(ancestor_pre[i],
                                economical_hasher_.CachedDigest(ancestors[i]));
      }
    }
  }

  PROVDB_RETURN_IF_ERROR(tree_.Delete(id));
  if (options_.hashing_mode == HashingMode::kEconomical) {
    economical_hasher_.Forget(id);
    if (parent != storage::kInvalidObjectId) {
      economical_hasher_.Invalidate(parent);
    }
  }

  std::vector<crypto::Digest> ancestor_post(ancestors.size());
  if (!ancestors.empty()) {
    if (options_.hashing_mode == HashingMode::kBasic) {
      std::unordered_map<storage::ObjectId, crypto::Digest> all;
      PROVDB_RETURN_IF_ERROR(
          ComputeAllHashes(ancestors.back(), &all, &metrics));
      for (size_t i = 0; i < ancestors.size(); ++i) {
        ancestor_post[i] = all.at(ancestors[i]);
      }
    } else {
      PROVDB_RETURN_IF_ERROR(
          ComputeHash(ancestors.back(), &metrics).status());
      for (size_t i = 0; i < ancestors.size(); ++i) {
        PROVDB_ASSIGN_OR_RETURN(ancestor_post[i],
                                economical_hasher_.CachedDigest(ancestors[i]));
      }
    }
  }

  for (size_t i = 0; i < ancestors.size(); ++i) {
    PROVDB_RETURN_IF_ERROR(EmitRecord(p, OperationType::kUpdate,
                                      /*inherited=*/true, ancestors[i],
                                      &ancestor_pre[i], ancestor_post[i],
                                      nullptr, &metrics));
  }
  chains_.Erase(id);
  FinishOperation(metrics);
  return Status::OK();
}

Result<storage::ObjectId> TrackedDatabase::Aggregate(
    const crypto::Participant& p,
    const std::vector<storage::ObjectId>& inputs,
    const storage::Value& root_value) {
  any_tracked_op_ = true;
  if (complex_ != nullptr) {
    return Status::FailedPrecondition(
        "Aggregate is not allowed inside a complex operation");
  }
  if (inputs.empty()) {
    return Status::InvalidArgument("aggregate requires at least one input");
  }
  OperationMetrics metrics;

  // Sort inputs into the global total order (required by the checksum
  // formula, §3).
  std::vector<storage::ObjectId> sorted_inputs = inputs;
  std::sort(sorted_inputs.begin(), sorted_inputs.end());
  sorted_inputs.erase(
      std::unique(sorted_inputs.begin(), sorted_inputs.end()),
      sorted_inputs.end());

  std::vector<crypto::Digest> input_hashes;
  std::vector<Bytes> prev_checksums;
  std::vector<ObjectState> input_states;
  SeqId max_seq = 0;
  for (storage::ObjectId in : sorted_inputs) {
    PROVDB_RETURN_IF_ERROR(tree_.GetNode(in).status());
    PROVDB_ASSIGN_OR_RETURN(crypto::Digest h, ComputeHash(in, &metrics));
    input_hashes.push_back(h);
    input_states.push_back(ObjectState{in, h});
    LocalChainState::Tail tail = chains_.Get(in);
    prev_checksums.push_back(tail.checksum);  // empty when untracked
    if (tail.exists && tail.seq_id > max_seq) {
      max_seq = tail.seq_id;
    }
  }

  PROVDB_ASSIGN_OR_RETURN(storage::ObjectId out_id,
                          tree_.Aggregate(sorted_inputs, root_value));
  PROVDB_ASSIGN_OR_RETURN(crypto::Digest out_hash,
                          ComputeHash(out_id, &metrics));

  ProvenanceRecord record;
  record.seq_id = max_seq + 1;
  record.participant = p.id();
  record.op = OperationType::kAggregate;
  record.inputs = std::move(input_states);
  record.output = ObjectState{out_id, out_hash};

  Bytes payload =
      engine_.BuildAggregatePayload(input_hashes, out_hash, prev_checksums);
  Stopwatch sign_watch;
  PROVDB_ASSIGN_OR_RETURN(record.checksum,
                          engine_.SignPayload(p.signer(), payload));
  metrics.sign_seconds += sign_watch.ElapsedSeconds();

  Stopwatch store_watch;
  SeqId seq = record.seq_id;
  Bytes checksum_copy = record.checksum;
  PROVDB_RETURN_IF_ERROR(store_.AddRecord(std::move(record)).status());
  chains_.Set(out_id, seq, std::move(checksum_copy));
  metrics.store_seconds += store_watch.ElapsedSeconds();
  ++metrics.checksums;

  FinishOperation(metrics);
  return out_id;
}

// ---------------------------------------------------------------------
// Complex operations

Status TrackedDatabase::BeginComplexOperation(const crypto::Participant& p) {
  if (complex_ != nullptr) {
    return Status::FailedPrecondition(
        "a complex operation is already in progress");
  }
  complex_ = std::make_unique<ComplexState>();
  complex_->participant = &p;
  return Status::OK();
}

Status TrackedDatabase::CapturePreHashes(storage::ObjectId id) {
  std::vector<storage::ObjectId> targets;
  targets.push_back(id);
  for (storage::ObjectId anc : tree_.AncestorsOf(id)) {
    targets.push_back(anc);
  }

  if (options_.hashing_mode == HashingMode::kBasic) {
    PROVDB_ASSIGN_OR_RETURN(storage::ObjectId root, tree_.RootOf(id));
    if (complex_->basic_pre_walked_roots.insert(root).second) {
      // First touch of this tree: one full input walk (§4.3's Basic cost).
      PROVDB_RETURN_IF_ERROR(ComputeAllHashes(
          root, &complex_->basic_pre_pool, &complex_->metrics));
    }
    for (storage::ObjectId t : targets) {
      if (complex_->pre_hashes.count(t) > 0 ||
          complex_->inserted.count(t) > 0) {
        continue;
      }
      auto it = complex_->basic_pre_pool.find(t);
      if (it != complex_->basic_pre_pool.end()) {
        complex_->pre_hashes.emplace(t, it->second);
      }
    }
    return Status::OK();
  }

  for (storage::ObjectId t : targets) {
    if (complex_->pre_hashes.count(t) > 0 || complex_->inserted.count(t) > 0) {
      continue;
    }
    PROVDB_ASSIGN_OR_RETURN(crypto::Digest d,
                            ComputeHash(t, &complex_->metrics));
    complex_->pre_hashes.emplace(t, d);
  }
  return Status::OK();
}

Status TrackedDatabase::EndComplexOperation() {
  if (complex_ == nullptr) {
    return Status::FailedPrecondition("no complex operation in progress");
  }
  ComplexState& state = *complex_;
  const crypto::Participant& p = *state.participant;

  // The record set: every surviving touched or inserted object.
  std::vector<storage::ObjectId> subjects;
  for (storage::ObjectId id : state.touched) {
    if (state.deleted.count(id) == 0 && tree_.Contains(id)) {
      subjects.push_back(id);
    }
  }

  // Deepest objects first: the actual records precede the inherited ones
  // they cause, mirroring the conceptual §4.2 collection order.
  std::vector<std::pair<size_t, storage::ObjectId>> keyed;
  keyed.reserve(subjects.size());
  for (storage::ObjectId id : subjects) {
    PROVDB_ASSIGN_OR_RETURN(size_t depth, tree_.DepthOf(id));
    keyed.emplace_back(depth, id);
  }
  std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  // Output-state hashes: refresh each affected tree once, then read off.
  std::unordered_map<storage::ObjectId, crypto::Digest> post;
  if (options_.hashing_mode == HashingMode::kBasic) {
    std::set<storage::ObjectId> roots;
    for (const auto& [depth, id] : keyed) {
      PROVDB_ASSIGN_OR_RETURN(storage::ObjectId root, tree_.RootOf(id));
      roots.insert(root);
    }
    for (storage::ObjectId root : roots) {
      PROVDB_RETURN_IF_ERROR(ComputeAllHashes(root, &post, &state.metrics));
    }
  } else {
    std::set<storage::ObjectId> roots;
    for (const auto& [depth, id] : keyed) {
      PROVDB_ASSIGN_OR_RETURN(storage::ObjectId root, tree_.RootOf(id));
      roots.insert(root);
    }
    for (storage::ObjectId root : roots) {
      PROVDB_RETURN_IF_ERROR(ComputeHash(root, &state.metrics).status());
    }
    for (const auto& [depth, id] : keyed) {
      PROVDB_ASSIGN_OR_RETURN(crypto::Digest d,
                              economical_hasher_.CachedDigest(id));
      post.emplace(id, d);
    }
  }

  for (const auto& [depth, id] : keyed) {
    bool was_inserted = state.inserted.count(id) > 0;
    bool is_direct = state.direct.count(id) > 0;
    const crypto::Digest& post_hash = post.at(id);
    if (was_inserted) {
      PROVDB_RETURN_IF_ERROR(EmitRecord(p, OperationType::kInsert,
                                        /*inherited=*/!is_direct, id, nullptr,
                                        post_hash, nullptr, &state.metrics));
    } else {
      auto pre_it = state.pre_hashes.find(id);
      const crypto::Digest* pre =
          pre_it != state.pre_hashes.end() ? &pre_it->second : nullptr;
      PROVDB_RETURN_IF_ERROR(EmitRecord(p, OperationType::kUpdate,
                                        /*inherited=*/!is_direct, id, pre,
                                        post_hash, nullptr, &state.metrics));
    }
  }

  for (storage::ObjectId id : state.deleted) {
    chains_.Erase(id);
  }

  OperationMetrics metrics = state.metrics;
  complex_.reset();
  FinishOperation(metrics);
  return Status::OK();
}

// ---------------------------------------------------------------------
// Introspection

Result<crypto::Digest> TrackedDatabase::CurrentHash(storage::ObjectId id) {
  OperationMetrics scratch;
  return ComputeHash(id, &scratch);
}

Result<RecipientBundle> TrackedDatabase::ExportForRecipient(
    storage::ObjectId id) {
  if (complex_ != nullptr) {
    return Status::FailedPrecondition(
        "cannot export during a complex operation");
  }
  RecipientBundle bundle;
  bundle.subject = id;
  PROVDB_ASSIGN_OR_RETURN(bundle.data, SubtreeSnapshot::Capture(tree_, id));
  PROVDB_ASSIGN_OR_RETURN(bundle.records, store_.ExtractProvenance(id));
  return bundle;
}

Result<RecipientBundle> TrackedDatabase::ExportForRecipientDeep(
    storage::ObjectId id) {
  if (complex_ != nullptr) {
    return Status::FailedPrecondition(
        "cannot export during a complex operation");
  }
  RecipientBundle bundle;
  bundle.subject = id;
  PROVDB_ASSIGN_OR_RETURN(bundle.data, SubtreeSnapshot::Capture(tree_, id));
  std::vector<storage::ObjectId> descendants;
  for (const SubtreeSnapshot::Node& node : bundle.data.nodes()) {
    if (node.id != id) {
      descendants.push_back(node.id);
    }
  }
  PROVDB_ASSIGN_OR_RETURN(bundle.records,
                          store_.ExtractProvenanceDeep(id, descendants));
  return bundle;
}

void TrackedDatabase::FinishOperation(OperationMetrics metrics) {
  last_metrics_ = metrics;
  cumulative_metrics_.Accumulate(metrics);
}

void TrackedDatabase::ResetMetrics() {
  last_metrics_ = OperationMetrics{};
  cumulative_metrics_ = OperationMetrics{};
}

Status TrackedDatabase::AttachWal(storage::WalWriter* wal) {
  return store_.AttachWal(wal, /*checkpoint_existing=*/true);
}

Status TrackedDatabase::SyncWal() {
  storage::WalWriter* wal = store_.attached_wal();
  if (wal == nullptr) {
    return Status::FailedPrecondition("no WAL attached to this database");
  }
  return wal->Sync();
}

Status TrackedDatabase::CheckpointWal(const crypto::Signer& signer,
                                      uint64_t sealer_id,
                                      crypto::HashAlgorithm alg) {
  storage::WalWriter* wal = store_.attached_wal();
  if (wal == nullptr) {
    return Status::FailedPrecondition("no WAL attached to this database");
  }
  // Roll → seal → GC, the same crash-safe order as the ingest pipeline
  // (see IngestPipeline::CheckpointShard and DESIGN.md §13).
  PROVDB_ASSIGN_OR_RETURN(uint64_t horizon, wal->RollSegment());
  if (horizon <= wal->checkpoint_horizon()) {
    return Status::OK();
  }
  PROVDB_RETURN_IF_ERROR(CheckpointWriter::Write(wal->env(), wal->dir(),
                                                 store_, horizon, signer,
                                                 sealer_id, alg));
  PROVDB_RETURN_IF_ERROR(
      RemoveStaleCheckpoints(wal->env(), wal->dir(), horizon));
  return wal->GarbageCollect(horizon);
}

}  // namespace provdb::provenance
