#ifndef PROVDB_PROVENANCE_INGEST_PIPELINE_H_
#define PROVDB_PROVENANCE_INGEST_PIPELINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/hashmix.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "crypto/pki.h"
#include "observability/metrics.h"
#include "provenance/chain.h"
#include "provenance/checksum.h"
#include "provenance/provenance_store.h"
#include "provenance/record.h"
#include "provenance/snapshot.h"
#include "provenance/verifier.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace provdb::provenance {

/// One ingest operation, fully resolved by the producer: every hash and
/// every cross-object dependency (aggregate input states, their previous
/// checksums, the aggregate seqID) is materialized up front, so signing
/// and committing a request touches only its *output* object's chain.
/// That is what makes sharding by output object sound (§3.2: chains are
/// local, records for different objects never order against each other).
struct IngestRequest {
  OperationType op = OperationType::kInsert;
  /// The output object the record is for (shard routing key).
  storage::ObjectId object = storage::kInvalidObjectId;
  /// State hash of the output after the operation.
  crypto::Digest post_hash;
  /// Update only: state hash before the operation. When absent the input
  /// slot is a zero digest (bootstrap data, matching TrackedDatabase).
  bool has_pre_hash = false;
  crypto::Digest pre_hash;
  /// Aggregate only: input object states in ascending object-id order
  /// (the global total order the checksum formula requires).
  std::vector<ObjectState> inputs;
  /// Aggregate only: latest checksum of each input, aligned with
  /// `inputs`; empty entries for untracked inputs.
  std::vector<Bytes> input_prev_checksums;
  /// Aggregate only: 1 + max input seqID, computed by the producer (the
  /// inputs may live on other shards).
  SeqId aggregate_seq = 0;
  bool inherited = false;
  /// The acting participant (borrowed; must outlive the ingest).
  const crypto::Participant* participant = nullptr;
};

/// Builds and signs the provenance record for `request` given the current
/// tail of its output object's chain. Pure function of its arguments —
/// RSA signing is deterministic — so the sharded pipeline and a
/// sequential reference ingest produce bit-identical records; the
/// differential test harness is built on exactly this property.
Result<ProvenanceRecord> BuildSignedIngestRecord(
    const ChecksumEngine& engine, const LocalChainState::Tail& tail,
    const IngestRequest& request);

/// N independent ProvenanceStores, one per shard; every object's records
/// live wholly inside the shard its id mixes into. Sharding is by stable
/// hash of the *output* object id, so the assignment is a durable
/// on-disk contract (see common/hashmix.h).
///
/// Owns the epoch domain all its shards retire superseded index nodes
/// through, which makes OpenSnapshot() possible: a pinned, consistent
/// cross-shard cut readable while a single writer keeps mutating.
class ShardedProvenanceStore {
 public:
  explicit ShardedProvenanceStore(size_t num_shards);

  ShardedProvenanceStore(ShardedProvenanceStore&&) = default;
  ShardedProvenanceStore& operator=(ShardedProvenanceStore&&) = default;

  /// Which shard owns `id` under an `num_shards`-way split.
  static size_t ShardOf(storage::ObjectId id, size_t num_shards) {
    return static_cast<size_t>(Mix64(id) % num_shards);
  }

  /// `root/shard-NNN`, the WAL directory of shard `index`.
  static std::string ShardDirName(const std::string& root, size_t index);

  /// Rebuilds every shard from its WAL directory under `root`. A missing
  /// shard directory is an empty shard (the crash may have hit before its
  /// first batch); per-shard salvage reports are appended to `reports`
  /// when non-null, indexed by shard. Shards holding a sealed checkpoint
  /// recover from it plus their WAL suffix; `checkpoint_verifier` checks
  /// the seals (required once any shard has checkpointed — see
  /// ProvenanceStore::RecoverFromWal).
  static Result<ShardedProvenanceStore> Recover(
      storage::Env* env, const std::string& root, size_t num_shards,
      std::vector<storage::WalRecoveryReport>* reports = nullptr,
      const crypto::SignatureVerifier* checkpoint_verifier = nullptr);

  size_t num_shards() const { return shards_.size(); }
  ProvenanceStore& shard(size_t index) { return shards_[index]; }
  const ProvenanceStore& shard(size_t index) const { return shards_[index]; }
  ProvenanceStore& shard_for(storage::ObjectId id) {
    return shards_[ShardOf(id, shards_.size())];
  }

  uint64_t record_count() const;
  uint64_t live_record_count() const;

  /// Every live chain across all shards, keyed (hence ordered) by object
  /// id — the exact shape VerifyRecordChains consumes. Chain order within
  /// an object is seqID order regardless of shard count, so downstream
  /// reports are byte-identical to a sequential store's.
  std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>
  AllChains() const;

  /// The live chain of one object (empty when unknown or fully pruned).
  std::vector<const ProvenanceRecord*> ChainRecords(
      storage::ObjectId id) const;

  /// Cross-shard chain verification (§3 check 2 over every object),
  /// reusing the shared VerifyRecordChains engine. [[nodiscard]]: an
  /// unread report is an undetected tamper.
  [[nodiscard]] VerificationReport VerifyChains(
      const crypto::ParticipantRegistry& registry,
      crypto::HashAlgorithm alg = crypto::HashAlgorithm::kSha1,
      ThreadPool* pool = nullptr) const;

  /// Flattens all shards into one sequential ProvenanceStore (records in
  /// ascending object-id, then seqID order — the shard-stable canonical
  /// order), so StoreAuditor and the extraction/bundle machinery run
  /// unchanged over a sharded deployment.
  Result<ProvenanceStore> MergedStore() const;

  /// Pins the epoch domain and captures each shard's latest published
  /// version: a consistent cross-shard cut at batch boundaries,
  /// traversable lock-free while the writer keeps ingesting. Lock-free
  /// and allocation-light itself (one pin + one vector). See
  /// StoreSnapshot for the semantics.
  StoreSnapshot OpenSnapshot() const;

  /// Publishes every shard's current state (writer-side; requires the
  /// same external serialization as mutating the shards). The ingest
  /// pipeline publishes per-shard at each group-commit fsync instead;
  /// this entry point is for recovery seeding and directly-driven
  /// stores (tests, tools).
  void PublishAll();

  /// The domain protecting this store's snapshots.
  EpochDomain* epoch_domain() const { return domain_.get(); }

 private:
  /// Points every shard at domain_ — needed after recovery
  /// move-assigns freshly recovered stores into shards_.
  void AttachDomains();

  /// Declared before shards_ so it is destroyed after them: shard
  /// destructors free their live structures while retired nodes drain
  /// in the domain's destructor.
  std::unique_ptr<EpochDomain> domain_;
  std::vector<ProvenanceStore> shards_;
};

/// Periodic signed checkpoints (DESIGN.md §13). Inactive unless a signer
/// is set and at least one threshold is positive. When a shard's flush
/// commits and the shard has accumulated `every_records` records (or
/// `every_bytes` of WAL frames) since its last checkpoint, the pipeline
/// rolls the shard's WAL, seals a snapshot at the rolled horizon, and
/// garbage-collects the segments (and stale checkpoints) behind it.
struct CheckpointPolicy {
  uint64_t every_records = 0;
  uint64_t every_bytes = 0;
  /// Seals each checkpoint's root digest (borrowed; must outlive the
  /// pipeline). Recorded in the manifest as participant `sealer_id`.
  const crypto::Signer* signer = nullptr;
  uint64_t sealer_id = 0;
  /// Verifies existing checkpoint seals during Open recovery (borrowed).
  const crypto::SignatureVerifier* verifier = nullptr;

  bool enabled() const {
    return signer != nullptr && (every_records > 0 || every_bytes > 0);
  }
};

/// Tuning knobs for IngestPipeline.
struct IngestOptions {
  size_t num_shards = 1;

  /// Group commit: a shard's pending batch is flushed (signed, appended,
  /// one fsync, committed) once it holds this many requests...
  size_t max_batch_records = 64;
  /// ...or once its estimated WAL footprint reaches this many bytes...
  uint64_t max_batch_bytes = 1ull << 20;
  /// ...or, when > 0, once this many seconds have passed since the
  /// shard's last flush (checked on Submit; there is no timer thread).
  double flush_interval_seconds = 0;

  /// Baseline mode for benchmarks: flush every Submit and fsync after
  /// every single record (the paper-grade sync-per-append write path).
  bool sync_every_record = false;

  /// Signing fan-out across the shared thread pool. Default sequential.
  ParallelismConfig signing;

  crypto::HashAlgorithm hash_algorithm = crypto::HashAlgorithm::kSha1;

  /// Segment sizing for the per-shard WALs. `sync_every_append` and the
  /// WAL-level group-commit thresholds are ignored: the pipeline places
  /// every durability point itself (one Sync per batch).
  storage::WalOptions wal;

  /// Periodic per-shard checkpoint + WAL compaction policy.
  CheckpointPolicy checkpoint;
};

/// The sharded batched ingest engine. Requests are routed to a shard by
/// stable hash of their output object, buffered per shard, then flushed
/// as a batch: record signing fans out across the thread pool (grouped
/// by object, so a chain's records sign in order against the running
/// tail), the signed records are appended to the shard's WAL, *one*
/// fsync makes the whole batch durable, and only then is anything
/// committed in memory. Write-ahead ordering is therefore preserved
/// batch-wide: no in-memory commit ever precedes its durability point.
///
/// Thread-safe, serialized: every public operation acquires the
/// pipeline-wide mutex `mu_`, so concurrent producers may call
/// Submit/Drain/Close from any thread and their requests interleave at
/// request granularity (the signing fan-out inside a flush still runs on
/// the shared thread pool). A single producer pays only an uncontended
/// lock and produces byte-identical output to the pre-locking pipeline.
/// Reading `store()` while other threads ingest is racy — call Drain()
/// first and read during quiescence, as every test and tool here does.
/// After any flush error the pipeline is poisoned — every later
/// Submit/Drain returns the same status — because a failed WAL append
/// leaves no safe way to keep ordering guarantees for subsequent records
/// of the same chain.
class IngestPipeline {
 public:
  /// Opens (or reopens) a pipeline rooted at `root_dir`: recovers any
  /// existing shard directories, seeds every chain tail from the
  /// recovered records, and starts fresh WAL segments. Per-shard salvage
  /// reports land in `recovery_reports` when non-null.
  static Result<std::unique_ptr<IngestPipeline>> Open(
      storage::Env* env, const std::string& root_dir, IngestOptions options,
      std::vector<storage::WalRecoveryReport>* recovery_reports = nullptr);

  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Buffers one request on its shard, flushing the shard when a batch
  /// threshold fires. The request is neither durable nor visible in the
  /// store until its batch is flushed (Drain forces that).
  Status Submit(const IngestRequest& request);

  /// Barrier: flushes every shard's pending batch (sign, append, fsync,
  /// commit) in shard order. On return everything submitted is durable
  /// and visible in the store.
  Status Drain();

  /// Drain + close every shard WAL. Idempotent; further Submits fail.
  Status Close();

  /// Drains, then checkpoints every shard immediately, regardless of the
  /// policy thresholds (a signer must still be configured). Each shard's
  /// WAL is rolled, a sealed snapshot written at the rolled horizon, and
  /// the covered segments garbage-collected. Shards with nothing new
  /// since their last checkpoint are skipped without I/O.
  Status CheckpointNow();

  /// Checkpoints sealed for shard `index` since this pipeline opened.
  uint64_t shard_checkpoints(size_t index) const {
    MutexLock lock(&mu_);
    return shards_[index]->checkpoints;
  }

  const ShardedProvenanceStore& store() const { return *store_; }
  ShardedProvenanceStore* mutable_store() { return store_.get(); }

  /// Opens a pinned snapshot of the store *without* taking the pipeline
  /// lock: snapshots never serialize against Submit/Drain. Safe because
  /// store_ is set once in Open and each shard's published version is
  /// reached through one atomic load under the epoch pin. Every
  /// published version is an exact prefix of that shard's durable
  /// (fsynced) batches — the pipeline publishes the epoch tick only
  /// after each group commit's fsync + in-memory commit.
  StoreSnapshot OpenSnapshot() const { return store_->OpenSnapshot(); }

  /// The shard's WAL writer (null after Close) — exposed for the
  /// fault-injection crash sweep, which asserts synced_records against
  /// committed counts.
  const storage::WalWriter* shard_wal(size_t index) const;

  uint64_t submitted() const {
    MutexLock lock(&mu_);
    return submitted_count_;
  }
  uint64_t committed() const {
    MutexLock lock(&mu_);
    return committed_count_;
  }
  const IngestOptions& options() const { return options_; }
  const std::string& root_dir() const { return root_dir_; }

 private:
  struct Shard {
    explicit Shard(storage::WalWriter w) : wal(std::move(w)) {}
    storage::WalWriter wal;
    bool wal_open = true;
    LocalChainState chains;
    std::vector<IngestRequest> pending;
    uint64_t pending_bytes = 0;
    Stopwatch since_flush;
    /// Committed work since the shard's last checkpoint — what the
    /// CheckpointPolicy thresholds fire against.
    uint64_t records_since_checkpoint = 0;
    uint64_t bytes_since_checkpoint = 0;
    uint64_t checkpoints = 0;
  };

  IngestPipeline(storage::Env* env, std::string root_dir,
                 IngestOptions options);

  /// Signs, appends, fsyncs, and commits `shard`'s pending batch, then
  /// checkpoints the shard if the policy thresholds fire.
  Status FlushShardLocked(Shard* shard, ProvenanceStore* store)
      PROVDB_REQUIRES(mu_);

  /// Roll → seal → GC for one shard (the §13 compaction step). Called
  /// only at batch boundaries, so the snapshot state equals the WAL
  /// content exactly. A no-op when nothing new lies behind the roll
  /// point.
  Status CheckpointShardLocked(Shard* shard, ProvenanceStore* store)
      PROVDB_REQUIRES(mu_);

  /// Flushes every shard in shard order; the body of Drain(), factored
  /// out so Close() and CheckpointNow() can drain under their own lock.
  Status DrainLocked() PROVDB_REQUIRES(mu_);

  storage::Env* env_;
  std::string root_dir_;
  IngestOptions options_;
  ChecksumEngine engine_;
  /// Serializes every public entry point; see the class comment. Guards
  /// the shards (buffers, chain tails, WALs — their records are appended
  /// only under this lock) and the poison/counters below. The store
  /// pointer itself is set once in Open and never reassigned.
  mutable Mutex mu_;
  std::unique_ptr<ShardedProvenanceStore> store_;
  std::vector<std::unique_ptr<Shard>> shards_ PROVDB_GUARDED_BY(mu_);
  std::unique_ptr<ThreadPool> pool_;  // null when signing is sequential
  Status failed_ PROVDB_GUARDED_BY(mu_) =
      Status::OK();  // poison; see class comment
  bool closed_ PROVDB_GUARDED_BY(mu_) = false;
  uint64_t submitted_count_ PROVDB_GUARDED_BY(mu_) = 0;
  uint64_t committed_count_ PROVDB_GUARDED_BY(mu_) = 0;

  // Ingest observability (docs/OBSERVABILITY.md).
  observability::Counter* submitted_;
  observability::Counter* committed_;
  observability::Counter* batches_;
  observability::Counter* batch_bytes_;
  observability::Counter* sign_tasks_;
  observability::Gauge* pending_;
  observability::Histogram* flush_latency_;
  observability::Histogram* drain_latency_;
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_INGEST_PIPELINE_H_
