#include "provenance/snapshot.h"

#include <algorithm>
#include <set>
#include <string>

namespace provdb::provenance {

const ChainNode* StoreReadView::head_for(storage::ObjectId id) const {
  const ChainIndex::Leaf* leaf = ChainIndex::Find(root_, id);
  return leaf != nullptr ? leaf->head : nullptr;
}

namespace {

/// Reverses a cons list into seqID (ascending) order.
std::vector<const ProvenanceRecord*> MaterializeChain(const ChainNode* head) {
  if (head == nullptr) {
    return {};
  }
  std::vector<const ProvenanceRecord*> out(
      static_cast<size_t>(head->length));
  size_t pos = out.size();
  for (const ChainNode* cell = head; cell != nullptr; cell = cell->prev) {
    out[--pos] = cell->record;
  }
  return out;
}

}  // namespace

std::vector<const ProvenanceRecord*> StoreReadView::ChainRecords(
    storage::ObjectId id) const {
  return MaterializeChain(head_for(id));
}

void StoreReadView::AppendChains(
    std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>* out)
    const {
  ForEachChain([out](storage::ObjectId id, const ChainNode* head) {
    (*out)[id] = MaterializeChain(head);
  });
}

uint64_t StoreSnapshot::record_count() const {
  uint64_t total = 0;
  for (const StoreReadView& view : views_) {
    total += view.record_count();
  }
  return total;
}

uint64_t StoreSnapshot::live_record_count() const {
  uint64_t total = 0;
  for (const StoreReadView& view : views_) {
    total += view.live_record_count();
  }
  return total;
}

std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>
StoreSnapshot::AllChains() const {
  std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>> chains;
  for (const StoreReadView& view : views_) {
    view.AppendChains(&chains);
  }
  return chains;
}

std::vector<const ProvenanceRecord*> StoreSnapshot::ChainRecords(
    storage::ObjectId id) const {
  if (views_.empty()) {
    return {};
  }
  return view_for(id).ChainRecords(id);
}

namespace {

/// Work item of the DAG closure: include an object's chain up to and
/// including `end_pos` (mirrors ProvenanceStore::CollectClosure).
struct Prefix {
  storage::ObjectId object;
  size_t end_pos;
};

}  // namespace

std::vector<ProvenanceRecord> StoreSnapshot::CollectClosure(
    std::vector<std::pair<storage::ObjectId, size_t>> seeds) const {
  std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>> cache;
  auto chain_of = [&](storage::ObjectId id)
      -> const std::vector<const ProvenanceRecord*>& {
    auto it = cache.find(id);
    if (it == cache.end()) {
      it = cache.emplace(id, ChainRecords(id)).first;
    }
    return it->second;
  };

  std::set<const ProvenanceRecord*> included;
  std::vector<Prefix> work;
  for (const auto& [object, end_pos] : seeds) {
    work.push_back({object, end_pos});
  }

  while (!work.empty()) {
    Prefix prefix = work.back();
    work.pop_back();
    const std::vector<const ProvenanceRecord*>& chain =
        chain_of(prefix.object);
    for (size_t pos = 0; pos <= prefix.end_pos && pos < chain.size(); ++pos) {
      const ProvenanceRecord* rec = chain[pos];
      if (!included.insert(rec).second) {
        continue;  // already included (shared history via the DAG)
      }
      if (rec->op != OperationType::kAggregate) {
        continue;
      }
      for (const ObjectState& input : rec->inputs) {
        const std::vector<const ProvenanceRecord*>& input_chain =
            chain_of(input.object_id);
        // Scan from the end: the matching record is the latest one whose
        // output state equals the recorded input state.
        for (size_t pos2 = input_chain.size(); pos2-- > 0;) {
          const ProvenanceRecord* cand = input_chain[pos2];
          if (cand->output.state_hash == input.state_hash &&
              cand->seq_id < rec->seq_id) {
            work.push_back({input.object_id, pos2});
            break;
          }
        }
      }
    }
  }

  // Ascending (object id, seqID): the canonical cross-shard linear
  // extension of the seqID partial order (matches MergedStore order).
  std::vector<const ProvenanceRecord*> ordered(included.begin(),
                                               included.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const ProvenanceRecord* a, const ProvenanceRecord* b) {
              if (a->output.object_id != b->output.object_id) {
                return a->output.object_id < b->output.object_id;
              }
              return a->seq_id < b->seq_id;
            });
  std::vector<ProvenanceRecord> out;
  out.reserve(ordered.size());
  for (const ProvenanceRecord* rec : ordered) {
    out.push_back(*rec);
  }
  return out;
}

Result<std::vector<ProvenanceRecord>> StoreSnapshot::ExtractProvenance(
    storage::ObjectId subject) const {
  std::vector<const ProvenanceRecord*> chain = ChainRecords(subject);
  if (chain.empty()) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(subject));
  }
  return CollectClosure({{subject, chain.size() - 1}});
}

Result<std::vector<ProvenanceRecord>> StoreSnapshot::ExtractProvenanceDeep(
    storage::ObjectId subject,
    const std::vector<storage::ObjectId>& descendants) const {
  std::vector<const ProvenanceRecord*> chain = ChainRecords(subject);
  if (chain.empty()) {
    return Status::NotFound("no provenance records for object " +
                            std::to_string(subject));
  }
  std::vector<std::pair<storage::ObjectId, size_t>> seeds;
  seeds.emplace_back(subject, chain.size() - 1);
  for (storage::ObjectId descendant : descendants) {
    std::vector<const ProvenanceRecord*> dchain = ChainRecords(descendant);
    if (!dchain.empty()) {
      seeds.emplace_back(descendant, dchain.size() - 1);
    }
  }
  return CollectClosure(std::move(seeds));
}

}  // namespace provdb::provenance
