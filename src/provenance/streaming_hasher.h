#ifndef PROVDB_PROVENANCE_STREAMING_HASHER_H_
#define PROVDB_PROVENANCE_STREAMING_HASHER_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "crypto/digest.h"
#include "crypto/hash.h"
#include "storage/tree_store.h"
#include "storage/value.h"

namespace provdb::provenance {

/// Streaming computation of a table's compound hash for databases larger
/// than memory (§5.2): "read one row at a time, hashing the row and the
/// cells in it, and updating the table's hash value with the row's hash
/// value". The resulting digest is bit-identical to the in-memory
/// SubtreeHasher over the equivalent tree (ids, values, and child order
/// must match; rows must be fed in ascending id order).
class StreamingTableHasher {
 public:
  StreamingTableHasher(crypto::HashAlgorithm alg, storage::ObjectId table_id,
                       const storage::Value& table_value);

  /// Hashes one row: `cells` must be sorted by ascending cell id.
  /// The row hash is folded into the running table hash; cell hashes are
  /// not retained, so memory stays O(1) in the table size.
  void AddRow(storage::ObjectId row_id, const storage::Value& row_value,
              const std::vector<std::pair<storage::ObjectId, storage::Value>>&
                  cells);

  /// Completes and returns the table hash. The hasher is then exhausted.
  crypto::Digest Finish();

  /// Rows fed so far.
  uint64_t rows_hashed() const { return rows_hashed_; }

  /// Total node-hash computations (cells + rows; the final table hash adds
  /// one more at Finish).
  uint64_t nodes_hashed() const { return nodes_hashed_; }

 private:
  crypto::HashAlgorithm alg_;
  std::unique_ptr<crypto::Hasher> table_hasher_;
  uint64_t rows_hashed_ = 0;
  uint64_t nodes_hashed_ = 0;
};

/// Folds streamed table hashes into a database hash, completing §5.2's
/// scheme: "when all tables are hashed, we get the final hash value of the
/// database". Tables must be added in ascending id order.
class StreamingDatabaseHasher {
 public:
  StreamingDatabaseHasher(crypto::HashAlgorithm alg,
                          storage::ObjectId database_id,
                          const storage::Value& database_value);

  /// Adds a completed table digest (from StreamingTableHasher::Finish).
  void AddTable(const crypto::Digest& table_hash);

  /// Completes and returns the database hash.
  crypto::Digest Finish();

 private:
  std::unique_ptr<crypto::Hasher> hasher_;
  uint64_t tables_added_ = 0;
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_STREAMING_HASHER_H_
