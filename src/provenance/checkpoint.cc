#include "provenance/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/varint.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "provenance/serialization.h"

namespace provdb::provenance {
namespace {

/// The tail of one live chain as sealed into the chain-tails frame.
struct ChainTail {
  SeqId seq_id = 0;
  Bytes checksum;
};

constexpr char kTmpSuffix[] = ".tmp";

/// "checkpoint-NNNNNN.pvck" -> horizon, or 0 when `name` is not a
/// (non-temporary) checkpoint file. Unlike WAL segment names a horizon
/// of 0 never appears in a file name, so 0 is unambiguous here.
uint64_t ParseCheckpointName(const std::string& name) {
  const std::string prefix = "checkpoint-";
  const std::string suffix = ".pvck";
  if (name.size() <= prefix.size() + suffix.size()) return 0;
  if (name.compare(0, prefix.size(), prefix) != 0) return 0;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return 0;
  }
  uint64_t index = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return 0;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (index > (UINT64_MAX - digit) / 10) return 0;
    index = index * 10 + digit;
  }
  return index;
}

Bytes BuildCheckpointHeader(uint64_t horizon) {
  Bytes header;
  header.reserve(kCheckpointHeaderSize);
  AppendBytes(&header, ByteView(reinterpret_cast<const uint8_t*>(
                                    kCheckpointMagic),
                                sizeof(kCheckpointMagic)));
  AppendFixed64(&header, horizon);
  AppendFixed32(&header, Crc32(ByteView(header.data(), header.size())));
  return header;
}

Bytes BuildFrame(ByteView payload) {
  Bytes frame;
  AppendVarint64(&frame, payload.size());
  AppendBytes(&frame, payload);
  AppendFixed32(&frame, Crc32(payload));
  return frame;
}

/// Absorbs one frame payload into the running root digest. The fixed
/// length prefix keeps payload boundaries unambiguous under
/// concatenation (two different frame sequences can never hash alike).
void AbsorbFrame(crypto::Hasher* hasher, ByteView payload) {
  Bytes len;
  AppendFixed64(&len, payload.size());
  hasher->Update(len);
  hasher->Update(payload);
}

Bytes EncodeManifest(const CheckpointManifest& manifest) {
  Bytes out;
  AppendByte(&out, kCheckpointVersion);
  AppendVarint64(&out, manifest.wal_horizon);
  AppendVarint64(&out, manifest.sealer);
  AppendVarint64(&out, static_cast<uint64_t>(manifest.root_hash));
  AppendVarint64(&out, manifest.live_records);
  AppendVarint64(&out, manifest.chain_count);
  return out;
}

Result<CheckpointManifest> DecodeManifest(ByteView payload) {
  VarintReader reader(payload);
  PROVDB_ASSIGN_OR_RETURN(Bytes version, reader.ReadRaw(1));
  if (version[0] != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(version[0]));
  }
  CheckpointManifest manifest;
  PROVDB_ASSIGN_OR_RETURN(manifest.wal_horizon, reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(manifest.sealer, reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(uint64_t alg, reader.ReadVarint64());
  if (alg > static_cast<uint64_t>(crypto::HashAlgorithm::kMd5)) {
    return Status::Corruption("unknown checkpoint root hash algorithm " +
                              std::to_string(alg));
  }
  manifest.root_hash = static_cast<crypto::HashAlgorithm>(alg);
  PROVDB_ASSIGN_OR_RETURN(manifest.live_records, reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(manifest.chain_count, reader.ReadVarint64());
  if (!reader.done()) {
    return Status::Corruption("trailing bytes after checkpoint manifest");
  }
  return manifest;
}

/// The live chain tails of `store`, ascending by object id — the map
/// iteration order *is* the sealed order.
std::map<storage::ObjectId, ChainTail> CollectChainTails(
    const ProvenanceStore& store) {
  std::map<storage::ObjectId, ChainTail> tails;
  for (uint64_t i = 0; i < store.record_count(); ++i) {
    if (store.is_pruned(i)) continue;
    const ProvenanceRecord& rec = store.record(i);
    // Index order is seqID order per chain, so the last live record of
    // an object seen in this scan is its tail.
    tails[rec.output.object_id] = ChainTail{rec.seq_id, rec.checksum};
  }
  return tails;
}

Bytes EncodeChainTails(const std::map<storage::ObjectId, ChainTail>& tails) {
  Bytes out;
  for (const auto& [object, tail] : tails) {
    AppendVarint64(&out, object);
    AppendVarint64(&out, tail.seq_id);
    AppendLengthPrefixed(&out, tail.checksum);
  }
  return out;
}

}  // namespace

std::string CheckpointFileName(const std::string& dir, uint64_t horizon) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "checkpoint-%06llu.pvck",
                static_cast<unsigned long long>(horizon));
  return dir + "/" + buf;
}

Status CheckpointWriter::Write(storage::Env* env, const std::string& dir,
                               const ProvenanceStore& store,
                               uint64_t wal_horizon,
                               const crypto::Signer& signer,
                               uint64_t sealer_id,
                               crypto::HashAlgorithm root_hash) {
  if (wal_horizon == 0) {
    return Status::InvalidArgument(
        "checkpoint horizon must cover at least WAL segment 1");
  }
  // Checkpoint observability (docs/OBSERVABILITY.md). Resolved here
  // because sealing is a one-shot static pass, like WAL recovery.
  observability::MetricsRegistry& metrics = observability::GlobalMetrics();
  observability::ScopedLatencyTimer timer(
      metrics.histogram("checkpoint.write.latency_us"));
  observability::TraceSpan span("checkpoint.write");

  const std::map<storage::ObjectId, ChainTail> tails =
      CollectChainTails(store);
  CheckpointManifest manifest;
  manifest.wal_horizon = wal_horizon;
  manifest.sealer = sealer_id;
  manifest.root_hash = root_hash;
  manifest.live_records = store.live_record_count();
  manifest.chain_count = tails.size();

  std::unique_ptr<crypto::Hasher> hasher = crypto::CreateHasher(root_hash);
  hasher->Reset();

  Bytes content = BuildCheckpointHeader(wal_horizon);
  auto emit = [&](ByteView payload) {
    AbsorbFrame(hasher.get(), payload);
    AppendBytes(&content, BuildFrame(payload));
  };
  emit(EncodeManifest(manifest));
  for (uint64_t i = 0; i < store.record_count(); ++i) {
    if (!store.is_pruned(i)) {
      emit(EncodeRecord(store.record(i)));
    }
  }
  emit(EncodeChainTails(tails));

  // The seal: sign the store-level root. The signature frame itself is
  // outside the root (it cannot cover itself); its integrity comes from
  // the frame CRC plus the fact that a swapped signature fails to
  // verify.
  crypto::Digest root = hasher->Finish();
  PROVDB_ASSIGN_OR_RETURN(Bytes signature, signer.Sign(root.view()));
  Bytes seal;
  AppendLengthPrefixed(&seal, signature);
  AppendBytes(&content, BuildFrame(seal));

  // tmp + fsync + atomic rename + directory fsync (inside RenameFile):
  // a crash at any point leaves either no checkpoint or the complete
  // sealed one — never a torn file that recovery must judge.
  const std::string final_path = CheckpointFileName(dir, wal_horizon);
  const std::string tmp_path = final_path + kTmpSuffix;
  PROVDB_ASSIGN_OR_RETURN(std::unique_ptr<storage::WritableFile> file,
                          env->NewWritableFile(tmp_path));
  PROVDB_RETURN_IF_ERROR(file->Append(content));
  PROVDB_RETURN_IF_ERROR(file->Sync());
  PROVDB_RETURN_IF_ERROR(file->Close());
  PROVDB_RETURN_IF_ERROR(env->RenameFile(tmp_path, final_path));

  metrics.counter("checkpoint.writes")->Increment();
  metrics.counter("checkpoint.write.records")->Add(manifest.live_records);
  metrics.counter("checkpoint.write.bytes")->Add(content.size());
  return Status::OK();
}

Result<LoadedCheckpoint> CheckpointReader::Load(
    storage::Env* env, const std::string& path,
    const crypto::SignatureVerifier& verifier) {
  observability::MetricsRegistry& metrics = observability::GlobalMetrics();
  observability::ScopedLatencyTimer timer(
      metrics.histogram("checkpoint.load.latency_us"));
  observability::TraceSpan span("checkpoint.load");

  PROVDB_ASSIGN_OR_RETURN(Bytes content, env->ReadFileToBytes(path));
  if (content.size() < kCheckpointHeaderSize) {
    return Status::Corruption("checkpoint " + path + " shorter than header");
  }
  // The magic is a public framing constant, not a secret; timing-safe
  // comparison is not required here.
  // lint:allow ct-memcmp
  if (std::memcmp(content.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0 ||
      ReadFixed32(content, 16) != Crc32(ByteView(content.data(), 16))) {
    return Status::Corruption("bad checkpoint header in " + path);
  }
  const uint64_t header_horizon = ReadFixed64(content, 8);

  // Strict framing: checkpoints are written atomically, so unlike a WAL
  // tail there is no legal way for one to end mid-frame — every
  // malformation is corruption, never a salvageable tear.
  std::vector<Bytes> payloads;
  VarintReader reader(
      ByteView(content).subview(kCheckpointHeaderSize));
  while (!reader.done()) {
    PROVDB_ASSIGN_OR_RETURN(Bytes payload, reader.ReadLengthPrefixed());
    PROVDB_ASSIGN_OR_RETURN(Bytes crc_raw, reader.ReadRaw(4));
    if (ReadFixed32(crc_raw, 0) != Crc32(payload)) {
      return Status::Corruption("checkpoint frame CRC mismatch in " + path);
    }
    payloads.push_back(std::move(payload));
  }
  if (payloads.size() < 3) {
    // Minimum: manifest, chain tails, seal (an empty store still seals).
    return Status::Corruption("checkpoint " + path + " is missing frames");
  }

  PROVDB_ASSIGN_OR_RETURN(CheckpointManifest manifest,
                          DecodeManifest(payloads.front()));
  if (manifest.wal_horizon != header_horizon) {
    return Status::Corruption(
        "checkpoint header horizon disagrees with its manifest in " + path);
  }
  if (payloads.size() != manifest.live_records + 3) {
    return Status::Corruption("checkpoint " + path + " frame count " +
                              std::to_string(payloads.size()) +
                              " does not match its manifest");
  }

  // Verify the seal before trusting a single record: recompute the root
  // over every sealed payload and check the signature. This is the same
  // refusal a tampered record meets — kVerificationFailed, no partial
  // load.
  std::unique_ptr<crypto::Hasher> hasher =
      crypto::CreateHasher(manifest.root_hash);
  hasher->Reset();
  for (size_t i = 0; i + 1 < payloads.size(); ++i) {
    AbsorbFrame(hasher.get(), payloads[i]);
  }
  crypto::Digest root = hasher->Finish();
  VarintReader seal_reader(payloads.back());
  PROVDB_ASSIGN_OR_RETURN(Bytes signature, seal_reader.ReadLengthPrefixed());
  if (!seal_reader.done()) {
    return Status::Corruption("trailing bytes after checkpoint seal in " +
                              path);
  }
  Status sealed = verifier.Verify(root.view(), signature);
  if (!sealed.ok()) {
    return Status::VerificationFailed(
        "checkpoint seal of " + path +
        " does not verify: " + sealed.ToString());
  }

  // Rebuild the store from the sealed records, then cross-check the
  // rebuilt chain tails against the sealed ones — a defense-in-depth
  // consistency check (the signature already covers both).
  LoadedCheckpoint loaded;
  loaded.manifest = manifest;
  for (uint64_t i = 0; i < manifest.live_records; ++i) {
    PROVDB_ASSIGN_OR_RETURN(ProvenanceRecord rec,
                            DecodeRecord(payloads[1 + i]));
    PROVDB_RETURN_IF_ERROR(loaded.store.AddRecord(std::move(rec)).status());
  }
  const std::map<storage::ObjectId, ChainTail> rebuilt =
      CollectChainTails(loaded.store);
  if (rebuilt.size() != manifest.chain_count) {
    return Status::Corruption("checkpoint " + path + " chain count " +
                              std::to_string(rebuilt.size()) +
                              " does not match its manifest");
  }
  VarintReader tails_reader(payloads[payloads.size() - 2]);
  for (const auto& [object, tail] : rebuilt) {
    PROVDB_ASSIGN_OR_RETURN(uint64_t sealed_object,
                            tails_reader.ReadVarint64());
    PROVDB_ASSIGN_OR_RETURN(uint64_t sealed_seq, tails_reader.ReadVarint64());
    PROVDB_ASSIGN_OR_RETURN(Bytes sealed_checksum,
                            tails_reader.ReadLengthPrefixed());
    if (sealed_object != object || sealed_seq != tail.seq_id ||
        !ConstantTimeEqual(sealed_checksum, tail.checksum)) {
      return Status::Corruption(
          "checkpoint " + path + " chain tail for object " +
          std::to_string(object) + " disagrees with its sealed records");
    }
  }
  if (!tails_reader.done()) {
    return Status::Corruption("trailing bytes after checkpoint chain tails in " +
                              path);
  }

  metrics.counter("checkpoint.loads")->Increment();
  metrics.counter("checkpoint.load.records")->Add(manifest.live_records);
  return loaded;
}

Result<uint64_t> LatestCheckpointHorizon(storage::Env* env,
                                         const std::string& dir) {
  PROVDB_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
  uint64_t latest = 0;
  for (const std::string& name : names) {
    latest = std::max(latest, ParseCheckpointName(name));
  }
  if (latest == 0) {
    return Status::NotFound("no checkpoint in " + dir);
  }
  return latest;
}

Status RemoveStaleCheckpoints(storage::Env* env, const std::string& dir,
                              uint64_t keep_horizon) {
  observability::Counter* removed =
      observability::GlobalMetrics().counter("checkpoint.stale_removed");
  PROVDB_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
  bool removed_any = false;
  const size_t tmp_len = sizeof(kTmpSuffix) - 1;
  for (const std::string& name : names) {
    const uint64_t horizon = ParseCheckpointName(name);
    const bool stale_checkpoint = horizon > 0 && horizon < keep_horizon;
    // A lingering .tmp is always abandoned: the writer builds every
    // snapshot in a fresh temp file and renames it away on success, and
    // this cleanup only runs between writes.
    const bool abandoned_tmp =
        name.size() > tmp_len &&
        name.compare(name.size() - tmp_len, tmp_len, kTmpSuffix) == 0 &&
        ParseCheckpointName(name.substr(0, name.size() - tmp_len)) > 0;
    if (!stale_checkpoint && !abandoned_tmp) {
      continue;
    }
    PROVDB_RETURN_IF_ERROR(env->RemoveFile(dir + "/" + name));
    removed->Increment();
    removed_any = true;
  }
  if (removed_any) {
    PROVDB_RETURN_IF_ERROR(env->SyncDir(dir));
  }
  return Status::OK();
}

}  // namespace provdb::provenance
