#include "provenance/attack.h"

namespace provdb::provenance::attacks {

namespace {

Status CheckIndex(const RecipientBundle& bundle, size_t record_index) {
  if (record_index >= bundle.records.size()) {
    return Status::OutOfRange("record index " + std::to_string(record_index) +
                              " out of range");
  }
  return Status::OK();
}

}  // namespace

Status TamperRecordOutputHash(RecipientBundle* bundle, size_t record_index) {
  PROVDB_RETURN_IF_ERROR(CheckIndex(*bundle, record_index));
  ProvenanceRecord& rec = bundle->records[record_index];
  if (rec.output.state_hash.empty()) {
    return Status::FailedPrecondition("record has no output hash to tamper");
  }
  rec.output.state_hash.mutable_data()[0] ^= 0x01;
  return Status::OK();
}

Status TamperRecordInputHash(RecipientBundle* bundle, size_t record_index,
                             size_t input_index) {
  PROVDB_RETURN_IF_ERROR(CheckIndex(*bundle, record_index));
  ProvenanceRecord& rec = bundle->records[record_index];
  if (input_index >= rec.inputs.size()) {
    return Status::OutOfRange("input index out of range");
  }
  rec.inputs[input_index].state_hash.mutable_data()[0] ^= 0x01;
  return Status::OK();
}

Status RemoveRecord(RecipientBundle* bundle, size_t record_index) {
  PROVDB_RETURN_IF_ERROR(CheckIndex(*bundle, record_index));
  bundle->records.erase(bundle->records.begin() + record_index);
  return Status::OK();
}

Status InsertForgedRecord(RecipientBundle* bundle,
                          const crypto::Participant& attacker,
                          const ChecksumEngine& engine,
                          storage::ObjectId victim_object, SeqId seq_id,
                          const crypto::Digest& fake_pre,
                          const crypto::Digest& fake_post) {
  // Find the record currently holding `seq_id` (if any) to splice before,
  // and the forged record's "previous" checksum.
  Bytes prev_checksum;
  for (const ProvenanceRecord& rec : bundle->records) {
    if (rec.output.object_id == victim_object && rec.seq_id + 1 == seq_id) {
      prev_checksum = rec.checksum;
    }
  }

  ProvenanceRecord forged;
  forged.seq_id = seq_id;
  forged.participant = attacker.id();
  forged.op = OperationType::kUpdate;
  forged.inputs.push_back(ObjectState{victim_object, fake_pre});
  forged.output = ObjectState{victim_object, fake_post};
  Bytes payload =
      engine.BuildUpdatePayload(fake_pre, fake_post, prev_checksum);
  PROVDB_ASSIGN_OR_RETURN(forged.checksum,
                          engine.SignPayload(attacker.signer(), payload));

  // Renumber existing records at seq_id and above to make room.
  for (ProvenanceRecord& rec : bundle->records) {
    if (rec.output.object_id == victim_object && rec.seq_id >= seq_id) {
      ++rec.seq_id;
    }
  }
  bundle->records.push_back(std::move(forged));
  return Status::OK();
}

Status TamperDataValue(RecipientBundle* bundle, storage::ObjectId node,
                       const storage::Value& new_value) {
  return bundle->data.TamperValue(node, new_value);
}

Status ReattributeProvenance(RecipientBundle* bundle,
                             SubtreeSnapshot other_data) {
  bundle->subject = other_data.root();
  bundle->data = std::move(other_data);
  return Status::OK();
}

Status RenameDataObject(RecipientBundle* bundle, storage::ObjectId new_root) {
  bundle->data.TamperRootId(new_root);
  bundle->subject = new_root;
  return Status::OK();
}

Status ReassignRecordParticipant(RecipientBundle* bundle, size_t record_index,
                                 crypto::ParticipantId scapegoat) {
  PROVDB_RETURN_IF_ERROR(CheckIndex(*bundle, record_index));
  bundle->records[record_index].participant = scapegoat;
  return Status::OK();
}

Status RemoveRecordAndRenumber(RecipientBundle* bundle, size_t record_index) {
  PROVDB_RETURN_IF_ERROR(CheckIndex(*bundle, record_index));
  ProvenanceRecord removed = bundle->records[record_index];
  bundle->records.erase(bundle->records.begin() + record_index);
  for (ProvenanceRecord& rec : bundle->records) {
    if (rec.output.object_id == removed.output.object_id &&
        rec.seq_id > removed.seq_id) {
      --rec.seq_id;
    }
  }
  return Status::OK();
}

}  // namespace provdb::provenance::attacks
