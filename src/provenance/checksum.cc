#include "provenance/checksum.h"

#include "observability/trace.h"

namespace provdb::provenance {

ChecksumEngine::ChecksumEngine(crypto::HashAlgorithm alg)
    : alg_(alg),
      payload_insert_(
          observability::GlobalMetrics().counter("checksum.payload.insert")),
      payload_update_(
          observability::GlobalMetrics().counter("checksum.payload.update")),
      payload_aggregate_(observability::GlobalMetrics().counter(
          "checksum.payload.aggregate")),
      sign_count_(
          observability::GlobalMetrics().counter("checksum.sign.count")),
      sign_latency_(observability::GlobalMetrics().histogram(
          "checksum.sign.latency_us")) {}

Result<Bytes> ChecksumEngine::SignPayload(const crypto::Signer& signer,
                                          ByteView payload) const {
  observability::ScopedLatencyTimer timer(sign_latency_);
  observability::TraceSpan span("checksum.sign");
  sign_count_->Increment();
  return signer.Sign(payload);
}

Bytes ChecksumEngine::BuildInsertPayload(const crypto::Digest& out_hash) const {
  payload_insert_->Increment();
  // 0 | h(A, val) | 0 — the input slot is a digest-width zero block; the
  // previous-checksum slot is empty (there is no previous checksum).
  Bytes payload(crypto::HashDigestSize(alg_), 0);
  AppendBytes(&payload, out_hash.view());
  return payload;
}

Bytes ChecksumEngine::BuildUpdatePayload(const crypto::Digest& in_hash,
                                         const crypto::Digest& out_hash,
                                         ByteView prev_checksum) const {
  payload_update_->Increment();
  Bytes payload;
  payload.reserve(in_hash.size() + out_hash.size() + prev_checksum.size());
  AppendBytes(&payload, in_hash.view());
  AppendBytes(&payload, out_hash.view());
  AppendBytes(&payload, prev_checksum);
  return payload;
}

Bytes ChecksumEngine::BuildAggregatePayload(
    const std::vector<crypto::Digest>& input_hashes,
    const crypto::Digest& out_hash,
    const std::vector<Bytes>& prev_checksums) const {
  payload_aggregate_->Increment();
  // h( h(A_1,v_1) | ... | h(A_n,v_n) ) — one digest summarizing all inputs.
  Bytes concat_inputs;
  concat_inputs.reserve(input_hashes.size() * crypto::HashDigestSize(alg_));
  for (const crypto::Digest& h : input_hashes) {
    AppendBytes(&concat_inputs, h.view());
  }
  crypto::Digest inputs_digest = crypto::HashBytes(alg_, concat_inputs);

  Bytes payload;
  AppendBytes(&payload, inputs_digest.view());
  AppendBytes(&payload, out_hash.view());
  for (const Bytes& prev : prev_checksums) {
    AppendBytes(&payload, prev);
  }
  return payload;
}

}  // namespace provdb::provenance
