#include "provenance/checksum.h"

namespace provdb::provenance {

Bytes ChecksumEngine::BuildInsertPayload(const crypto::Digest& out_hash) const {
  // 0 | h(A, val) | 0 — the input slot is a digest-width zero block; the
  // previous-checksum slot is empty (there is no previous checksum).
  Bytes payload(crypto::HashDigestSize(alg_), 0);
  AppendBytes(&payload, out_hash.view());
  return payload;
}

Bytes ChecksumEngine::BuildUpdatePayload(const crypto::Digest& in_hash,
                                         const crypto::Digest& out_hash,
                                         ByteView prev_checksum) const {
  Bytes payload;
  payload.reserve(in_hash.size() + out_hash.size() + prev_checksum.size());
  AppendBytes(&payload, in_hash.view());
  AppendBytes(&payload, out_hash.view());
  AppendBytes(&payload, prev_checksum);
  return payload;
}

Bytes ChecksumEngine::BuildAggregatePayload(
    const std::vector<crypto::Digest>& input_hashes,
    const crypto::Digest& out_hash,
    const std::vector<Bytes>& prev_checksums) const {
  // h( h(A_1,v_1) | ... | h(A_n,v_n) ) — one digest summarizing all inputs.
  Bytes concat_inputs;
  concat_inputs.reserve(input_hashes.size() * crypto::HashDigestSize(alg_));
  for (const crypto::Digest& h : input_hashes) {
    AppendBytes(&concat_inputs, h.view());
  }
  crypto::Digest inputs_digest = crypto::HashBytes(alg_, concat_inputs);

  Bytes payload;
  AppendBytes(&payload, inputs_digest.view());
  AppendBytes(&payload, out_hash.view());
  for (const Bytes& prev : prev_checksums) {
    AppendBytes(&payload, prev);
  }
  return payload;
}

}  // namespace provdb::provenance
