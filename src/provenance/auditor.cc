#include "provenance/auditor.h"

#include <map>

namespace provdb::provenance {

StoreAuditor::StoreAuditor(const crypto::ParticipantRegistry* registry,
                           crypto::HashAlgorithm alg)
    : registry_(registry), engine_(alg) {}

VerificationReport StoreAuditor::Audit(const ProvenanceStore& store,
                                       const storage::TreeStore& tree) const {
  VerificationReport report;

  // Group all live records into per-object chains. Store chains are
  // already seq-ordered (AddRecord enforces monotonicity).
  std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>> chains;
  for (uint64_t i = 0; i < store.record_count(); ++i) {
    if (store.is_pruned(i)) {
      continue;
    }
    const ProvenanceRecord& rec = store.record(i);
    chains[rec.output.object_id].push_back(&rec);
  }

  // Check 2 over every chain.
  VerifyRecordChains(*registry_, engine_, chains, &report);

  // Check 1, in place: live tracked objects must hash to their latest
  // record's output state. (Objects without chains are bootstrap data;
  // chains whose object is gone correspond to deletions, which legally
  // leave the final inherited ancestor records behind — those ancestors
  // still exist, so a missing object with a chain tail means its whole
  // subtree was removed; we only flag *live* mismatches, mirroring the
  // recipient-side guarantee.)
  SubtreeHasher hasher(&tree, engine_.algorithm());
  for (const auto& [object, chain] : chains) {
    if (!tree.Contains(object)) {
      continue;
    }
    Result<crypto::Digest> current = hasher.HashSubtreeBasic(object);
    if (!current.ok()) {
      report.issues.push_back(VerificationIssue{
          IssueKind::kSnapshotMalformed, object, 0,
          current.status().message()});
      continue;
    }
    const ProvenanceRecord* latest = chain.back();
    if (!(current.value() == latest->output.state_hash)) {
      report.issues.push_back(VerificationIssue{
          IssueKind::kDataHashMismatch, object, latest->seq_id,
          "live object state does not match its most recent provenance "
          "record (undocumented modification, R4)"});
    }
  }
  return report;
}

}  // namespace provdb::provenance
