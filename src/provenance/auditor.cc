#include "provenance/auditor.h"

#include <future>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "observability/trace.h"

namespace provdb::provenance {

namespace {

/// Check 1 for one live object: does subtree(object) still hash to the
/// latest record's output state? Self-contained (reads only the tree, via
/// a const hasher), so it can run on any thread.
std::optional<VerificationIssue> CheckLiveObject(
    const SubtreeHasher& hasher, const storage::TreeStore& tree,
    storage::ObjectId object,
    const std::vector<const ProvenanceRecord*>& chain) {
  if (!tree.Contains(object)) {
    return std::nullopt;
  }
  Result<crypto::Digest> current = hasher.HashSubtreeBasic(object);
  if (!current.ok()) {
    return VerificationIssue{IssueKind::kSnapshotMalformed, object, 0,
                             current.status().message()};
  }
  const ProvenanceRecord* latest = chain.back();
  if (!(current.value() == latest->output.state_hash)) {
    return VerificationIssue{
        IssueKind::kDataHashMismatch, object, latest->seq_id,
        "live object state does not match its most recent provenance "
        "record (undocumented modification, R4)"};
  }
  return std::nullopt;
}

}  // namespace

StoreAuditor::StoreAuditor(const crypto::ParticipantRegistry* registry,
                           crypto::HashAlgorithm alg,
                           ParallelismConfig parallelism)
    : registry_(registry),
      engine_(alg),
      runs_(observability::GlobalMetrics().counter("audit.runs")),
      live_checks_(observability::GlobalMetrics().counter("audit.live_checks")),
      issues_(observability::GlobalMetrics().counter("audit.issues")),
      run_latency_(
          observability::GlobalMetrics().histogram("audit.run.latency_us")) {
  if (!parallelism.sequential()) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(parallelism.num_threads));
  }
}

VerificationReport StoreAuditor::Audit(const ProvenanceStore& store,
                                       const storage::TreeStore& tree) const {
  // Group all live records into per-object chains. Store chains are
  // already seq-ordered (AddRecord enforces monotonicity).
  std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>> chains;
  for (uint64_t i = 0; i < store.record_count(); ++i) {
    if (store.is_pruned(i)) {
      continue;
    }
    const ProvenanceRecord& rec = store.record(i);
    chains[rec.output.object_id].push_back(&rec);
  }
  return AuditChains(chains, tree);
}

VerificationReport StoreAuditor::Audit(const StoreSnapshot& snapshot,
                                       const storage::TreeStore& tree) const {
  return AuditChains(snapshot.AllChains(), tree);
}

VerificationReport StoreAuditor::AuditChains(
    const std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>&
        chains,
    const storage::TreeStore& tree) const {
  observability::ScopedLatencyTimer audit_timer(run_latency_);
  observability::TraceSpan audit_span("audit.run");
  runs_->Increment();
  VerificationReport report;

  // Check 2 over every chain.
  VerifyRecordChains(*registry_, engine_, chains, &report, pool_.get());

  // Check 1, in place: live tracked objects must hash to their latest
  // record's output state. (Objects without chains are bootstrap data;
  // chains whose object is gone correspond to deletions, which legally
  // leave the final inherited ancestor records behind — those ancestors
  // still exist, so a missing object with a chain tail means its whole
  // subtree was removed; we only flag *live* mismatches, mirroring the
  // recipient-side guarantee.)
  SubtreeHasher hasher(&tree, engine_.algorithm());
  if (pool_ == nullptr || pool_->size() <= 1 || chains.size() <= 1) {
    for (const auto& [object, chain] : chains) {
      std::optional<VerificationIssue> issue =
          CheckLiveObject(hasher, tree, object, chain);
      live_checks_->Increment();
      if (issue.has_value()) {
        issues_->Increment();
        report.issues.push_back(std::move(*issue));
      }
    }
    return report;
  }

  // Parallel sweep: one task per live chain object; futures collected in
  // map (= ascending object id) order keep the report byte-identical to
  // the sequential sweep.
  std::vector<std::future<std::optional<VerificationIssue>>> results;
  results.reserve(chains.size());
  for (auto it = chains.begin(); it != chains.end(); ++it) {
    const storage::ObjectId object = it->first;
    const std::vector<const ProvenanceRecord*>* chain = &it->second;
    results.push_back(pool_->Submit([&hasher, &tree, object, chain] {
      return CheckLiveObject(hasher, tree, object, *chain);
    }));
  }
  for (auto& result : results) {
    std::optional<VerificationIssue> issue = result.get();
    live_checks_->Increment();
    if (issue.has_value()) {
      issues_->Increment();
      report.issues.push_back(std::move(*issue));
    }
  }
  return report;
}

}  // namespace provdb::provenance
