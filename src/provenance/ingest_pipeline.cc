#include "provenance/ingest_pipeline.h"

#include <cstdio>
#include <future>
#include <unordered_map>
#include <utility>

#include "observability/trace.h"
#include "provenance/checkpoint.h"
#include "provenance/serialization.h"

namespace provdb::provenance {
namespace {

/// Rough WAL footprint of a request's eventual record frame, for the
/// max_batch_bytes threshold: fixed framing plus an RSA-1024 checksum,
/// plus every digest the record will carry. Only a flush heuristic —
/// exactness is not required, monotonicity is.
uint64_t EstimateRequestBytes(const IngestRequest& request) {
  uint64_t bytes = 160 + request.post_hash.size();
  if (request.has_pre_hash) {
    bytes += request.pre_hash.size();
  }
  for (size_t i = 0; i < request.inputs.size(); ++i) {
    bytes += 8 + request.inputs[i].state_hash.size();
  }
  return bytes;
}

Status ValidateRequest(const IngestRequest& request) {
  if (request.participant == nullptr) {
    return Status::InvalidArgument("ingest request has no participant");
  }
  if (request.object == storage::kInvalidObjectId) {
    return Status::InvalidArgument("ingest request has no output object");
  }
  if (request.op == OperationType::kAggregate) {
    if (request.inputs.empty()) {
      return Status::InvalidArgument("aggregate requires at least one input");
    }
    if (request.input_prev_checksums.size() != request.inputs.size()) {
      return Status::InvalidArgument(
          "aggregate prev-checksum count does not match its inputs");
    }
    for (size_t i = 1; i < request.inputs.size(); ++i) {
      if (request.inputs[i].object_id <= request.inputs[i - 1].object_id) {
        return Status::InvalidArgument(
            "aggregate inputs must be strictly ascending by object id");
      }
    }
  } else if (!request.inputs.empty() ||
             !request.input_prev_checksums.empty()) {
    // Insert has no inputs; an update's single input is derived from the
    // request's own object and pre-hash, never supplied explicitly.
    return Status::InvalidArgument(
        "only aggregate requests carry explicit inputs");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// BuildSignedIngestRecord
// ---------------------------------------------------------------------------

Result<ProvenanceRecord> BuildSignedIngestRecord(
    const ChecksumEngine& engine, const LocalChainState::Tail& tail,
    const IngestRequest& request) {
  PROVDB_RETURN_IF_ERROR(ValidateRequest(request));

  ProvenanceRecord record;
  record.participant = request.participant->id();
  record.op = request.op;
  record.inherited = request.inherited;
  record.output = ObjectState{request.object, request.post_hash};

  Bytes payload;
  switch (request.op) {
    case OperationType::kInsert: {
      if (tail.exists) {
        return Status::FailedPrecondition(
            "insert for object " + std::to_string(request.object) +
            " which already has a chain");
      }
      record.seq_id = 0;
      payload = engine.BuildInsertPayload(request.post_hash);
      break;
    }
    case OperationType::kUpdate: {
      // Bootstrap objects (no chain yet) start at seq 0 with an empty
      // previous-checksum slot, matching TrackedDatabase::EmitRecord.
      record.seq_id = tail.exists ? tail.seq_id + 1 : 0;
      crypto::Digest in_hash =
          request.has_pre_hash ? request.pre_hash : crypto::Digest();
      record.inputs.push_back(ObjectState{request.object, in_hash});
      payload = engine.BuildUpdatePayload(in_hash, request.post_hash,
                                          tail.checksum);
      break;
    }
    case OperationType::kAggregate: {
      if (tail.exists) {
        return Status::FailedPrecondition(
            "aggregate output object " + std::to_string(request.object) +
            " already has a chain");
      }
      std::vector<crypto::Digest> input_hashes;
      input_hashes.reserve(request.inputs.size());
      for (size_t i = 0; i < request.inputs.size(); ++i) {
        input_hashes.push_back(request.inputs[i].state_hash);
      }
      record.seq_id = request.aggregate_seq;
      record.inputs = request.inputs;
      payload = engine.BuildAggregatePayload(input_hashes, request.post_hash,
                                             request.input_prev_checksums);
      break;
    }
  }

  PROVDB_ASSIGN_OR_RETURN(
      record.checksum,
      engine.SignPayload(request.participant->signer(), payload));
  return record;
}

// ---------------------------------------------------------------------------
// ShardedProvenanceStore
// ---------------------------------------------------------------------------

ShardedProvenanceStore::ShardedProvenanceStore(size_t num_shards)
    : domain_(std::make_unique<EpochDomain>()),
      shards_(num_shards == 0 ? 1 : num_shards) {
  AttachDomains();
}

void ShardedProvenanceStore::AttachDomains() {
  for (ProvenanceStore& shard : shards_) {
    shard.AttachEpochDomain(domain_.get());
  }
}

StoreSnapshot ShardedProvenanceStore::OpenSnapshot() const {
  // Pin first, then load each shard's published version: the pin
  // guarantees nothing loaded afterwards is reclaimed while the
  // snapshot lives.
  EpochDomain::Guard guard = domain_->Pin();
  std::vector<StoreReadView> views;
  views.reserve(shards_.size());
  for (const ProvenanceStore& shard : shards_) {
    views.emplace_back(shard.published_version());
  }
  return StoreSnapshot(std::move(guard), std::move(views));
}

void ShardedProvenanceStore::PublishAll() {
  for (ProvenanceStore& shard : shards_) {
    shard.PublishSnapshot();
  }
  domain_->Collect();
}

std::string ShardedProvenanceStore::ShardDirName(const std::string& root,
                                                 size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%03zu", index);
  return root + "/" + buf;
}

Result<ShardedProvenanceStore> ShardedProvenanceStore::Recover(
    storage::Env* env, const std::string& root, size_t num_shards,
    std::vector<storage::WalRecoveryReport>* reports,
    const crypto::SignatureVerifier* checkpoint_verifier) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  ShardedProvenanceStore store(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    const std::string dir = ShardDirName(root, i);
    storage::WalRecoveryReport report;
    if (env->FileExists(dir)) {
      PROVDB_ASSIGN_OR_RETURN(
          store.shards_[i],
          ProvenanceStore::RecoverFromWal(env, dir, &report,
                                          checkpoint_verifier));
    }
    // A missing directory is an empty shard: the crash may have hit
    // before this shard received its first batch.
    if (reports != nullptr) {
      reports->push_back(report);
    }
  }
  // Recovery built the shards domainless (RecoverFromWal returns
  // standalone stores); re-attach and publish so snapshots opened right
  // after recovery already see the recovered (durable) state.
  store.AttachDomains();
  store.PublishAll();
  return store;
}

uint64_t ShardedProvenanceStore::record_count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    total += shards_[i].record_count();
  }
  return total;
}

uint64_t ShardedProvenanceStore::live_record_count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    total += shards_[i].live_record_count();
  }
  return total;
}

std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>>
ShardedProvenanceStore::AllChains() const {
  std::map<storage::ObjectId, std::vector<const ProvenanceRecord*>> chains;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ProvenanceStore& shard = shards_[s];
    // Index order within a shard is seqID order per object (AddRecord
    // enforces it), so each chain comes out already sorted.
    for (uint64_t i = 0; i < shard.record_count(); ++i) {
      if (shard.is_pruned(i)) continue;
      const ProvenanceRecord& rec = shard.record(i);
      chains[rec.output.object_id].push_back(&rec);
    }
  }
  return chains;
}

std::vector<const ProvenanceRecord*> ShardedProvenanceStore::ChainRecords(
    storage::ObjectId id) const {
  const ProvenanceStore& shard = shards_[ShardOf(id, shards_.size())];
  std::vector<const ProvenanceRecord*> out;
  for (uint64_t index : shard.ChainOf(id)) {
    if (!shard.is_pruned(index)) {
      out.push_back(&shard.record(index));
    }
  }
  return out;
}

VerificationReport ShardedProvenanceStore::VerifyChains(
    const crypto::ParticipantRegistry& registry, crypto::HashAlgorithm alg,
    ThreadPool* pool) const {
  ChecksumEngine engine(alg);
  VerificationReport report;
  VerifyRecordChains(registry, engine, AllChains(), &report, pool);
  return report;
}

Result<ProvenanceStore> ShardedProvenanceStore::MergedStore() const {
  ProvenanceStore merged;
  const auto chains = AllChains();
  for (auto it = chains.begin(); it != chains.end(); ++it) {
    for (const ProvenanceRecord* rec : it->second) {
      PROVDB_RETURN_IF_ERROR(merged.AddRecord(*rec).status());
    }
  }
  return merged;
}

// ---------------------------------------------------------------------------
// IngestPipeline
// ---------------------------------------------------------------------------

IngestPipeline::IngestPipeline(storage::Env* env, std::string root_dir,
                               IngestOptions options)
    : env_(env),
      root_dir_(std::move(root_dir)),
      options_(options),
      engine_(options.hash_algorithm),
      submitted_(observability::GlobalMetrics().counter("ingest.submitted")),
      committed_(observability::GlobalMetrics().counter("ingest.committed")),
      batches_(observability::GlobalMetrics().counter("ingest.batches")),
      batch_bytes_(
          observability::GlobalMetrics().counter("ingest.batch_bytes")),
      sign_tasks_(
          observability::GlobalMetrics().counter("ingest.sign_tasks")),
      pending_(observability::GlobalMetrics().gauge("ingest.pending")),
      flush_latency_(observability::GlobalMetrics().histogram(
          "ingest.flush.latency_us")),
      drain_latency_(observability::GlobalMetrics().histogram(
          "ingest.drain.latency_us")) {}

// No Close in the destructor: like WalWriter, destruction without Close
// models a crash (nothing un-synced becomes durable), which the
// fault-injection sweep relies on. Clean shutdown is explicit Close().
IngestPipeline::~IngestPipeline() = default;

Result<std::unique_ptr<IngestPipeline>> IngestPipeline::Open(
    storage::Env* env, const std::string& root_dir, IngestOptions options,
    std::vector<storage::WalRecoveryReport>* recovery_reports) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("ingest pipeline needs at least 1 shard");
  }
  if (options.max_batch_records == 0) {
    return Status::InvalidArgument("max_batch_records must be at least 1");
  }
  // The pipeline places every durability point itself — one Sync per
  // flushed batch — so WAL-level auto-sync must stay off.
  options.wal.sync_every_append = false;
  options.wal.group_commit_records = 0;
  options.wal.group_commit_bytes = 0;

  PROVDB_RETURN_IF_ERROR(env->CreateDir(root_dir));
  std::vector<storage::WalRecoveryReport> reports;
  PROVDB_ASSIGN_OR_RETURN(
      ShardedProvenanceStore recovered,
      ShardedProvenanceStore::Recover(env, root_dir, options.num_shards,
                                      &reports,
                                      options.checkpoint.verifier));

  std::unique_ptr<IngestPipeline> pipeline(
      new IngestPipeline(env, root_dir, options));
  pipeline->store_ =
      std::make_unique<ShardedProvenanceStore>(std::move(recovered));

  {
    // The pipeline is not yet published, but shards_ is guarded by mu_,
    // so seed it under the (uncontended) lock to keep the analysis exact.
    MutexLock lock(&pipeline->mu_);
    for (size_t i = 0; i < options.num_shards; ++i) {
      // The recovered horizon flows into the writer so fresh segments are
      // numbered past GC'd history and never resurrect a deleted index.
      storage::WalOptions wal_options = options.wal;
      wal_options.checkpoint_horizon = reports[i].checkpoint_horizon;
      PROVDB_ASSIGN_OR_RETURN(
          storage::WalWriter wal,
          storage::WalWriter::Open(
              env, ShardedProvenanceStore::ShardDirName(root_dir, i),
              wal_options));
      auto shard = std::make_unique<Shard>(std::move(wal));
      // Seed every chain tail from the recovered records so reopened
      // chains continue exactly where the durable log left them.
      const ProvenanceStore& store = pipeline->store_->shard(i);
      for (uint64_t r = 0; r < store.record_count(); ++r) {
        if (store.is_pruned(r)) continue;
        const ProvenanceRecord& rec = store.record(r);
        shard->chains.Set(rec.output.object_id, rec.seq_id, rec.checksum);
      }
      pipeline->shards_.push_back(std::move(shard));
    }
  }

  if (!options.signing.sequential()) {
    pipeline->pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options.signing.num_threads));
  }
  if (recovery_reports != nullptr) {
    for (size_t i = 0; i < reports.size(); ++i) {
      recovery_reports->push_back(reports[i]);
    }
  }
  return pipeline;
}

const storage::WalWriter* IngestPipeline::shard_wal(size_t index) const {
  MutexLock lock(&mu_);
  const Shard& shard = *shards_[index];
  return shard.wal_open ? &shard.wal : nullptr;
}

Status IngestPipeline::Submit(const IngestRequest& request) {
  MutexLock lock(&mu_);
  if (!failed_.ok()) return failed_;
  if (closed_) {
    return Status::FailedPrecondition("submit to closed ingest pipeline");
  }
  PROVDB_RETURN_IF_ERROR(ValidateRequest(request));

  const size_t index =
      ShardedProvenanceStore::ShardOf(request.object, shards_.size());
  Shard* shard = shards_[index].get();
  shard->pending.push_back(request);
  shard->pending_bytes += EstimateRequestBytes(request);
  ++submitted_count_;
  submitted_->Increment();
  pending_->Add(1);

  const bool threshold =
      options_.sync_every_record ||
      shard->pending.size() >= options_.max_batch_records ||
      shard->pending_bytes >= options_.max_batch_bytes ||
      (options_.flush_interval_seconds > 0 &&
       shard->since_flush.ElapsedSeconds() >=
           options_.flush_interval_seconds);
  if (threshold) {
    Status s = FlushShardLocked(shard, &store_->shard(index));
    if (!s.ok()) {
      failed_ = s;
      return failed_;
    }
  }
  return Status::OK();
}

Status IngestPipeline::FlushShardLocked(Shard* shard,
                                        ProvenanceStore* store) {
  if (shard->pending.empty()) {
    shard->since_flush.Restart();
    return Status::OK();
  }
  observability::ScopedLatencyTimer timer(flush_latency_);
  observability::TraceSpan span("ingest.flush");

  std::vector<IngestRequest> batch = std::move(shard->pending);
  shard->pending.clear();
  shard->pending_bytes = 0;
  pending_->Sub(static_cast<int64_t>(batch.size()));

  // Group the batch by output object, preserving first-appearance order.
  // Records of one object must sign sequentially against the running
  // chain tail; distinct objects' groups are independent (§3.2) and fan
  // out across the pool.
  std::unordered_map<storage::ObjectId, size_t> group_of;
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < batch.size(); ++i) {
    auto [it, inserted] = group_of.emplace(batch[i].object, groups.size());
    if (inserted) {
      groups.emplace_back();
    }
    groups[it->second].push_back(i);
  }

  std::vector<ProvenanceRecord> records(batch.size());
  auto sign_group = [&](size_t g) -> Status {
    LocalChainState::Tail tail = shard->chains.Get(batch[groups[g][0]].object);
    for (size_t idx : groups[g]) {
      PROVDB_ASSIGN_OR_RETURN(
          ProvenanceRecord rec,
          BuildSignedIngestRecord(engine_, tail, batch[idx]));
      tail = LocalChainState::Tail{rec.seq_id, rec.checksum, true};
      records[idx] = std::move(rec);
    }
    return Status::OK();
  };

  if (pool_ != nullptr && groups.size() > 1) {
    std::vector<std::future<Status>> futures;
    futures.reserve(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      futures.push_back(pool_->Submit([&sign_group, g] {
        return sign_group(g);
      }));
    }
    sign_tasks_->Add(groups.size());
    Status first_error = Status::OK();
    for (size_t g = 0; g < futures.size(); ++g) {
      Status s = futures[g].get();
      if (first_error.ok() && !s.ok()) {
        first_error = s;
      }
    }
    PROVDB_RETURN_IF_ERROR(first_error);
  } else {
    for (size_t g = 0; g < groups.size(); ++g) {
      PROVDB_RETURN_IF_ERROR(sign_group(g));
    }
  }

  // Write-ahead, then the batch's single durability point, then — and
  // only then — the in-memory commit. Under sync_every_record every
  // record gets its own durability point before its commit instead.
  auto commit_one = [&](ProvenanceRecord&& rec) -> Status {
    const storage::ObjectId id = rec.output.object_id;
    const SeqId seq = rec.seq_id;
    Bytes checksum = rec.checksum;
    PROVDB_RETURN_IF_ERROR(store->AddRecord(std::move(rec)).status());
    shard->chains.Set(id, seq, std::move(checksum));
    ++committed_count_;
    committed_->Increment();
    return Status::OK();
  };

  uint64_t flushed_bytes = 0;
  if (options_.sync_every_record) {
    for (size_t i = 0; i < records.size(); ++i) {
      Bytes entry = EncodeWalRecordEntry(records[i]);
      flushed_bytes += entry.size();
      PROVDB_RETURN_IF_ERROR(shard->wal.Append(entry));
      PROVDB_RETURN_IF_ERROR(shard->wal.Sync());
      PROVDB_RETURN_IF_ERROR(commit_one(std::move(records[i])));
    }
  } else {
    for (size_t i = 0; i < records.size(); ++i) {
      Bytes entry = EncodeWalRecordEntry(records[i]);
      flushed_bytes += entry.size();
      PROVDB_RETURN_IF_ERROR(shard->wal.Append(entry));
    }
    PROVDB_RETURN_IF_ERROR(shard->wal.Sync());
    for (size_t i = 0; i < records.size(); ++i) {
      PROVDB_RETURN_IF_ERROR(commit_one(std::move(records[i])));
    }
  }

  batches_->Increment();
  batch_bytes_->Add(flushed_bytes);
  shard->since_flush.Restart();

  // The batch is durable (fsynced) and committed — publish the epoch
  // tick. Everything a concurrent snapshot can now observe is an exact
  // prefix of durable batches. PublishSnapshot is allocation-free
  // (preallocated version skeleton); Collect only frees superseded
  // nodes no pinned reader can reach.
  store->PublishSnapshot();
  if (store->epoch_domain() != nullptr) {
    store->epoch_domain()->Collect();
  }

  shard->records_since_checkpoint += records.size();
  shard->bytes_since_checkpoint += flushed_bytes;
  const CheckpointPolicy& policy = options_.checkpoint;
  if (policy.enabled() &&
      ((policy.every_records > 0 &&
        shard->records_since_checkpoint >= policy.every_records) ||
       (policy.every_bytes > 0 &&
        shard->bytes_since_checkpoint >= policy.every_bytes))) {
    PROVDB_RETURN_IF_ERROR(CheckpointShardLocked(shard, store));
  }
  return Status::OK();
}

Status IngestPipeline::CheckpointShardLocked(Shard* shard,
                                             ProvenanceStore* store) {
  // Ordering is the crash-safety argument (DESIGN.md §13): roll first so
  // the horizon is a closed segment, seal the snapshot (tmp + rename,
  // atomic), and only then delete covered segments and stale checkpoints.
  // A crash after the roll costs an extra segment; after the seal,
  // recovery already prefers the new checkpoint and skips the not-yet-
  // deleted history; mid-GC, the survivors sit behind the horizon and
  // are skipped too.
  PROVDB_ASSIGN_OR_RETURN(uint64_t horizon, shard->wal.RollSegment());
  if (horizon <= shard->wal.checkpoint_horizon()) {
    // Nothing durable past the last checkpoint; the existing seal stands.
    shard->records_since_checkpoint = 0;
    shard->bytes_since_checkpoint = 0;
    return Status::OK();
  }
  const std::string& dir = shard->wal.dir();
  PROVDB_RETURN_IF_ERROR(CheckpointWriter::Write(
      env_, dir, *store, horizon, *options_.checkpoint.signer,
      options_.checkpoint.sealer_id, options_.hash_algorithm));
  PROVDB_RETURN_IF_ERROR(RemoveStaleCheckpoints(env_, dir, horizon));
  PROVDB_RETURN_IF_ERROR(shard->wal.GarbageCollect(horizon));
  shard->records_since_checkpoint = 0;
  shard->bytes_since_checkpoint = 0;
  ++shard->checkpoints;
  return Status::OK();
}

Status IngestPipeline::CheckpointNow() {
  MutexLock lock(&mu_);
  if (!failed_.ok()) return failed_;
  if (closed_) {
    return Status::FailedPrecondition("checkpoint on closed ingest pipeline");
  }
  if (options_.checkpoint.signer == nullptr) {
    return Status::FailedPrecondition(
        "ingest pipeline has no checkpoint signer configured");
  }
  PROVDB_RETURN_IF_ERROR(DrainLocked());
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status s = CheckpointShardLocked(shards_[i].get(), &store_->shard(i));
    if (!s.ok()) {
      failed_ = s;
      return failed_;
    }
  }
  return Status::OK();
}

Status IngestPipeline::Drain() {
  MutexLock lock(&mu_);
  return DrainLocked();
}

Status IngestPipeline::DrainLocked() {
  if (!failed_.ok()) return failed_;
  if (closed_) return Status::OK();
  observability::ScopedLatencyTimer timer(drain_latency_);
  observability::TraceSpan span("ingest.drain");
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status s = FlushShardLocked(shards_[i].get(), &store_->shard(i));
    if (!s.ok()) {
      failed_ = s;
      return failed_;
    }
  }
  return Status::OK();
}

Status IngestPipeline::Close() {
  MutexLock lock(&mu_);
  if (closed_) return Status::OK();
  Status drain = failed_.ok() ? DrainLocked() : failed_;
  Status close_status = Status::OK();
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->wal_open) continue;
    Status c = shards_[i]->wal.Close();
    shards_[i]->wal_open = false;
    if (close_status.ok()) close_status = c;
  }
  closed_ = true;
  if (!drain.ok()) return drain;
  return close_status;
}

}  // namespace provdb::provenance
