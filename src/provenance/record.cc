#include "provenance/record.h"

#include "common/hex.h"

namespace provdb::provenance {

std::string_view OperationTypeName(OperationType op) {
  switch (op) {
    case OperationType::kInsert:
      return "insert";
    case OperationType::kUpdate:
      return "update";
    case OperationType::kAggregate:
      return "aggregate";
  }
  return "unknown";
}

std::string ProvenanceRecord::ToString() const {
  std::string out = "[seq=" + std::to_string(seq_id) +
                    " p=" + std::to_string(participant) + " " +
                    std::string(OperationTypeName(op));
  if (inherited) {
    out += " (inherited)";
  }
  out += " in={";
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(inputs[i].object_id);
  }
  out += "} out=" + std::to_string(output.object_id);
  if (has_output_snapshot) {
    out += "=" + output_snapshot.ToString();
  }
  out += " C=" + HexEncode(checksum).substr(0, 16) + "...]";
  return out;
}

}  // namespace provdb::provenance
