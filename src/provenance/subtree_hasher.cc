#include "provenance/subtree_hasher.h"

#include <future>
#include <utility>
#include <vector>

#include "common/varint.h"

namespace provdb::provenance {

crypto::Digest HashTreeNode(crypto::HashAlgorithm alg, storage::ObjectId id,
                            const storage::Value& value,
                            const std::vector<crypto::Digest>& child_hashes) {
  Bytes preimage;
  preimage.reserve(16 + value.ApproximateSize() +
                   child_hashes.size() * crypto::Digest::kMaxSize);
  AppendByte(&preimage, child_hashes.empty() ? kLeafNodeTag : kInteriorNodeTag);
  AppendVarint64(&preimage, id);
  value.CanonicalEncode(&preimage);
  for (const crypto::Digest& child : child_hashes) {
    AppendBytes(&preimage, child.view());
  }
  return crypto::HashBytes(alg, preimage);
}

SubtreeHasher::SubtreeHasher(const storage::TreeStore* tree,
                             crypto::HashAlgorithm alg)
    : tree_(tree),
      alg_(alg),
      nodes_hashed_total_(
          observability::GlobalMetrics().counter("hash.nodes_hashed")),
      subtree_calls_(
          observability::GlobalMetrics().counter("hash.subtree.calls")) {}

crypto::Digest SubtreeHasher::HashNode(
    storage::ObjectId id, const storage::Value& value,
    const std::vector<crypto::Digest>& child_hashes) const {
  nodes_hashed_.fetch_add(1, std::memory_order_relaxed);
  nodes_hashed_total_->Increment();
  return HashTreeNode(alg_, id, value, child_hashes);
}

crypto::Digest SubtreeHasher::HashAtomic(storage::ObjectId id,
                                         const storage::Value& value) const {
  return HashNode(id, value, {});
}

Result<crypto::Digest> SubtreeHasher::HashSubtreeBasic(
    storage::ObjectId root) const {
  subtree_calls_->Increment();
  PROVDB_RETURN_IF_ERROR(tree_->GetNode(root).status());

  // Iterative post-order: children hashed before their parent.
  struct Frame {
    storage::ObjectId id;
    size_t next_child = 0;
    std::vector<crypto::Digest> child_hashes;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0, {}});
  crypto::Digest result;

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const storage::TreeNode& node = *tree_->GetNode(frame.id).value();
    if (frame.next_child < node.children.size()) {
      storage::ObjectId child = node.children[frame.next_child++];
      stack.push_back({child, 0, {}});
      continue;
    }
    crypto::Digest digest = HashNode(node.id, node.value, frame.child_hashes);
    stack.pop_back();
    if (stack.empty()) {
      result = digest;
    } else {
      stack.back().child_hashes.push_back(digest);
    }
  }
  return result;
}

Result<crypto::Digest> SubtreeHasher::HashSubtreeBasic(
    storage::ObjectId root, ThreadPool* pool) const {
  PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* node,
                          tree_->GetNode(root));
  if (pool == nullptr || pool->size() <= 1 || node->children.size() < 2) {
    return HashSubtreeBasic(root);
  }

  // Fan out one task per child subtree (embarrassingly parallel: each
  // task only reads the tree). node->children is sorted ascending, and
  // futures are collected in that same order, so the combined digest is
  // identical to the sequential walk's.
  std::vector<std::future<Result<crypto::Digest>>> tasks;
  tasks.reserve(node->children.size());
  for (storage::ObjectId child : node->children) {
    tasks.push_back(
        pool->Submit([this, child] { return HashSubtreeBasic(child); }));
  }
  std::vector<crypto::Digest> child_hashes;
  child_hashes.reserve(tasks.size());
  Status first_error;
  for (std::future<Result<crypto::Digest>>& task : tasks) {
    Result<crypto::Digest> digest = task.get();
    if (!digest.ok()) {
      if (first_error.ok()) {
        first_error = digest.status();
      }
      continue;  // keep draining so no future outlives this call
    }
    child_hashes.push_back(std::move(digest).value());
  }
  if (!first_error.ok()) {
    return first_error;
  }
  return HashNode(node->id, node->value, child_hashes);
}

EconomicalHasher::EconomicalHasher(const storage::TreeStore* tree,
                                   crypto::HashAlgorithm alg)
    : tree_(tree),
      base_(tree, alg),
      memo_hits_(observability::GlobalMetrics().counter("hash.memo_hits")) {}

Result<crypto::Digest> EconomicalHasher::HashSubtree(storage::ObjectId root) {
  PROVDB_RETURN_IF_ERROR(tree_->GetNode(root).status());

  struct Frame {
    storage::ObjectId id;
    size_t next_child = 0;
    std::vector<crypto::Digest> child_hashes;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0, {}});
  crypto::Digest result;

  auto deliver = [&](const crypto::Digest& digest) {
    if (stack.empty()) {
      result = digest;
    } else {
      stack.back().child_hashes.push_back(digest);
    }
  };

  // Special case: the root itself may be clean in the cache.
  {
    auto it = cache_.find(root);
    if (it != cache_.end() && !it->second.dirty) {
      memo_hits_->Increment();
      return it->second.digest;
    }
  }

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const storage::TreeNode& node = *tree_->GetNode(frame.id).value();
    if (frame.next_child < node.children.size()) {
      storage::ObjectId child = node.children[frame.next_child++];
      auto it = cache_.find(child);
      if (it != cache_.end() && !it->second.dirty) {
        memo_hits_->Increment();
        frame.child_hashes.push_back(it->second.digest);  // reuse, no walk
      } else {
        stack.push_back({child, 0, {}});
      }
      continue;
    }
    crypto::Digest digest =
        base_.HashNode(node.id, node.value, frame.child_hashes);
    cache_[frame.id] = Entry{digest, /*dirty=*/false};
    stack.pop_back();
    deliver(digest);
  }
  return result;
}

void EconomicalHasher::Invalidate(storage::ObjectId id) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    it->second.dirty = true;
  }
  for (storage::ObjectId ancestor : tree_->AncestorsOf(id)) {
    auto anc_it = cache_.find(ancestor);
    if (anc_it != cache_.end()) {
      if (anc_it->second.dirty) {
        break;  // already-dirty ancestor implies the rest are dirty too
      }
      anc_it->second.dirty = true;
    }
  }
}

void EconomicalHasher::Forget(storage::ObjectId id) { cache_.erase(id); }

Result<crypto::Digest> EconomicalHasher::CachedDigest(
    storage::ObjectId id) const {
  auto it = cache_.find(id);
  if (it == cache_.end() || it->second.dirty) {
    return Status::NotFound("no clean cached digest for object " +
                            std::to_string(id));
  }
  return it->second.digest;
}

}  // namespace provdb::provenance
