#ifndef PROVDB_PROVENANCE_CHAIN_H_
#define PROVDB_PROVENANCE_CHAIN_H_

#include <unordered_map>
#include <utility>

#include "common/bytes.h"
#include "common/thread_annotations.h"
#include "provenance/record.h"
#include "storage/tree_store.h"

namespace provdb::provenance {

/// Tracks, per data object, the tail of its checksum chain: the latest
/// seqID and latest checksum. This is the paper's preferred *local*
/// (per-object) chaining (§3.2): independent objects advance their chains
/// in parallel, and corruption of one object's chain does not impair
/// verification of others.
class LocalChainState {
 public:
  struct Tail {
    SeqId seq_id = 0;
    Bytes checksum;
    bool exists = false;
  };

  /// Tail for `id`; `exists == false` when the object has no chain yet
  /// (fresh object, or bootstrap data predating provenance collection).
  Tail Get(storage::ObjectId id) const {
    auto it = tails_.find(id);
    return it == tails_.end() ? Tail{} : it->second;
  }

  /// Advances the chain for `id`.
  void Set(storage::ObjectId id, SeqId seq, Bytes checksum) {
    tails_[id] = Tail{seq, std::move(checksum), true};
  }

  /// Drops the chain of a deleted object (§2.1 footnote: a deleted
  /// object's provenance object is no longer relevant).
  void Erase(storage::ObjectId id) { tails_.erase(id); }

  size_t size() const { return tails_.size(); }

 private:
  std::unordered_map<storage::ObjectId, Tail> tails_;
};

/// The rejected *global* chaining alternative of §3.2, implemented as an
/// ablation baseline: a single chain across all objects, serialized by a
/// mutex — the "bottleneck" the paper argues against. Benchmarked in
/// bench_local_vs_global.
class GlobalChainState {
 public:
  struct Tail {
    SeqId seq_id = 0;
    Bytes checksum;
    bool exists = false;
  };

  /// Returns the current global tail. Callers hold the chain lock across
  /// Get + Set via WithLock to enforce the required total order; the
  /// callback receives `*this` with the lock held, which the analysis
  /// cannot see across the type-erased call — hence AssertHeld().
  Tail Get() const {
    mutex_.AssertHeld();
    return tail_;
  }

  void Set(SeqId seq, Bytes checksum) {
    mutex_.AssertHeld();
    tail_ = Tail{seq, std::move(checksum), true};
  }

  /// Runs `fn` with the global chain lock held, modeling the locking a
  /// multi-participant deployment would need.
  template <typename Fn>
  auto WithLock(Fn&& fn) {
    MutexLock guard(&mutex_);
    return fn(*this);
  }

 private:
  mutable Mutex mutex_;
  Tail tail_ PROVDB_GUARDED_BY(mutex_);
};

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_CHAIN_H_
