#ifndef PROVDB_PROVENANCE_CHECKPOINT_H_
#define PROVDB_PROVENANCE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "crypto/hash.h"
#include "crypto/signer.h"
#include "provenance/provenance_store.h"
#include "storage/env.h"

namespace provdb::provenance {

/// Signed checkpoints: sealed snapshots of a ProvenanceStore that bound
/// recovery to "checkpoint + WAL suffix" and let segments wholly behind
/// the seal be garbage-collected (DESIGN.md §13).
///
/// A checkpoint file `checkpoint-NNNNNN.pvck` (NNNNNN = the WAL segment
/// horizon it covers) is written tmp+fsync+rename, so it exists either
/// completely or not at all. Its layout mirrors the WAL segment format:
///
///   +--------+-------------+---------------------+
///   | magic  | wal horizon | crc32(magic||horizon)|  20-byte header
///   +--------+-------------+---------------------+
///   | varint(len) | payload | crc32(payload)     |  frame, repeated
///   +-------------+---------+--------------------+
///
/// Frame sequence: one manifest, one EncodeRecord payload per live
/// record (store index order), one chain-tails frame (per live chain,
/// ascending object id: the tail seqID and tail checksum), and finally
/// the seal — a signature over the store-level root digest, which is the
/// running hash of every preceding frame payload. Tampering with any
/// byte of the snapshot therefore either breaks a CRC (kCorruption) or
/// changes the root so the seal no longer verifies (kVerificationFailed)
/// — a forged checkpoint is refused at load exactly like a forged
/// record, which is what lets the tamper-evidence guarantee survive log
/// truncation.
inline constexpr char kCheckpointMagic[8] = {'P', 'V', 'D', 'B',
                                             'C', 'K', 'P', '1'};
inline constexpr size_t kCheckpointHeaderSize = 8 + 8 + 4;
inline constexpr uint8_t kCheckpointVersion = 1;

/// The manifest frame, parsed.
struct CheckpointManifest {
  /// Last WAL segment whose records the snapshot covers. Recovery
  /// replays only segments past this index; GC may delete the rest.
  uint64_t wal_horizon = 0;
  /// Participant id whose key sealed the checkpoint.
  uint64_t sealer = 0;
  /// Hash algorithm of the store-level root digest.
  crypto::HashAlgorithm root_hash = crypto::HashAlgorithm::kSha1;
  uint64_t live_records = 0;
  uint64_t chain_count = 0;
};

/// Full path of the checkpoint sealed at `horizon` under `dir`.
std::string CheckpointFileName(const std::string& dir, uint64_t horizon);

/// Serializes and seals checkpoints.
class CheckpointWriter {
 public:
  /// Writes the sealed snapshot of `store` covering WAL segments
  /// 1..`wal_horizon` into `dir`, signing the root digest with `signer`
  /// (recorded as participant `sealer_id`). Durable on return: the file
  /// is fsynced before the atomic rename and the directory after it.
  static Status Write(storage::Env* env, const std::string& dir,
                      const ProvenanceStore& store, uint64_t wal_horizon,
                      const crypto::Signer& signer, uint64_t sealer_id,
                      crypto::HashAlgorithm root_hash =
                          crypto::HashAlgorithm::kSha1);
};

/// A verified checkpoint: the rebuilt store plus its manifest.
struct LoadedCheckpoint {
  ProvenanceStore store;
  CheckpointManifest manifest;
};

/// Loads and verifies sealed checkpoints.
class CheckpointReader {
 public:
  /// Parses, CRC-checks, and signature-verifies the checkpoint at
  /// `path`, then rebuilds the store and cross-checks it against the
  /// sealed chain tails. Framing damage is kCorruption; a seal that does
  /// not verify under `verifier` is kVerificationFailed — the checkpoint
  /// is refused, never partially loaded.
  static Result<LoadedCheckpoint> Load(storage::Env* env,
                                       const std::string& path,
                                       const crypto::SignatureVerifier&
                                           verifier);
};

/// Horizon of the newest checkpoint in `dir`; kNotFound when none
/// exists. In-flight `.tmp` files (a crash mid-write) are ignored.
Result<uint64_t> LatestCheckpointHorizon(storage::Env* env,
                                         const std::string& dir);

/// Deletes checkpoints older than `keep_horizon` and any abandoned
/// `.tmp` leftovers. Idempotent, so a crash mid-removal just resumes on
/// the next call.
Status RemoveStaleCheckpoints(storage::Env* env, const std::string& dir,
                              uint64_t keep_horizon);

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_CHECKPOINT_H_
