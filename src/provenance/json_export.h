#ifndef PROVDB_PROVENANCE_JSON_EXPORT_H_
#define PROVDB_PROVENANCE_JSON_EXPORT_H_

#include <string>

#include "provenance/bundle.h"
#include "provenance/record.h"
#include "provenance/verifier.h"

namespace provdb::provenance {

/// JSON renderings of provenance artifacts for interoperability with
/// non-C++ tooling (dashboards, notebooks, the W3C-PROV-adjacent
/// ecosystem) and for human inspection. Hashes and checksums are emitted
/// as lowercase hex. Output is deterministic (fixed key order), so it
/// diffs and snapshots cleanly.
///
/// These renderings are *views*, not a verification surface — recipients
/// verify the binary bundle; JSON is for reading.

/// One record as a JSON object.
std::string RecordToJson(const ProvenanceRecord& record);

/// A full recipient bundle: subject, data snapshot, and records.
std::string BundleToJson(const RecipientBundle& bundle);

/// A verification report (issues and counters).
std::string ReportToJson(const VerificationReport& report);

/// Escapes a string per JSON (RFC 8259): quotes, backslashes, control
/// characters. Exposed for tests.
std::string JsonEscape(std::string_view raw);

}  // namespace provdb::provenance

#endif  // PROVDB_PROVENANCE_JSON_EXPORT_H_
