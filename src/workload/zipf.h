#ifndef PROVDB_WORKLOAD_ZIPF_H_
#define PROVDB_WORKLOAD_ZIPF_H_

#include <cstdint>

#include "common/rng.h"

namespace provdb::workload {

/// Zipf-distributed key picker over [0, n), YCSB-style (Gray et al.'s
/// "Quickly generating billion-record synthetic databases" rejection-free
/// formula): rank 0 is the hottest key, popularity decays as 1/rank^theta.
/// theta in (0, 1); YCSB's default 0.99 makes ~10% of keys draw ~90% of
/// traffic — the skew the server bench uses so hot chains grow long while
/// cold ones stay short.
///
/// Construction is O(n) (the harmonic normalizer is an exact sum — no
/// sampled approximation, n stays bench-sized); Next() is O(1). Not
/// thread-safe; the caller owns the Rng, so a fixed seed reproduces the
/// exact key sequence (R02: no ambient randomness).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Draws a key in [0, n).
  uint64_t Next(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;  // 1 / (1 - theta)
  double zetan_;  // zeta(n, theta)
  double eta_;
};

}  // namespace provdb::workload

#endif  // PROVDB_WORKLOAD_ZIPF_H_
