#include "workload/zipf.h"

#include <cmath>

namespace provdb::workload {

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n),
      theta_(theta),
      alpha_(1.0 / (1.0 - theta)),
      zetan_(Zeta(n_, theta)),
      eta_((1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta)) /
           (1.0 - Zeta(2, theta) / zetan_)) {}

uint64_t ZipfGenerator::Next(Rng* rng) const {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t k = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return k >= n_ ? n_ - 1 : k;
}

}  // namespace provdb::workload
