#include "workload/operations.h"

#include <algorithm>

namespace provdb::workload {

namespace {

/// First `count` elements of a Fisher-Yates partial shuffle of `items`.
std::vector<storage::ObjectId> SampleDistinct(
    std::vector<storage::ObjectId> items, size_t count, Rng* rng) {
  if (count > items.size()) {
    count = items.size();
  }
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + static_cast<size_t>(rng->NextBelow(items.size() - i));
    std::swap(items[i], items[j]);
  }
  items.resize(count);
  return items;
}

/// `count` distinct column indices out of `num_columns`.
std::vector<size_t> SampleColumns(size_t num_columns, size_t count, Rng* rng) {
  std::vector<size_t> cols(num_columns);
  for (size_t i = 0; i < num_columns; ++i) {
    cols[i] = i;
  }
  if (count > num_columns) {
    count = num_columns;
  }
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + static_cast<size_t>(rng->NextBelow(num_columns - i));
    std::swap(cols[i], cols[j]);
  }
  cols.resize(count);
  return cols;
}

}  // namespace

Result<ComplexOpScript> MakeUpdateScript(
    const SyntheticLayout::TableLayout& table, size_t num_updates,
    size_t num_rows, Rng* rng) {
  if (num_rows == 0 || num_updates == 0) {
    return Status::InvalidArgument("need at least one row and one update");
  }
  if (num_rows > table.rows.size()) {
    return Status::InvalidArgument("table has only " +
                                   std::to_string(table.rows.size()) +
                                   " rows");
  }
  size_t per_row = num_updates / num_rows;
  size_t remainder = num_updates % num_rows;
  if (per_row + (remainder > 0 ? 1 : 0) >
      static_cast<size_t>(table.num_attributes)) {
    return Status::InvalidArgument(
        "more distinct cell updates per row than the table has attributes");
  }

  ComplexOpScript script;
  script.table = table.table_id;
  script.num_attributes = table.num_attributes;
  std::vector<storage::ObjectId> rows =
      SampleDistinct(table.rows, num_rows, rng);
  for (size_t r = 0; r < rows.size(); ++r) {
    size_t cells_here = per_row + (r < remainder ? 1 : 0);
    std::vector<size_t> cols = SampleColumns(
        static_cast<size_t>(table.num_attributes), cells_here, rng);
    for (size_t col : cols) {
      PrimitiveOp op;
      op.kind = PrimitiveOp::Kind::kUpdateCell;
      op.row = rows[r];
      op.column = col;
      op.value = static_cast<int64_t>(rng->NextBelow(1000000));
      script.ops.push_back(op);
    }
  }
  return script;
}

Result<ComplexOpScript> MakeDeleteScript(
    const SyntheticLayout::TableLayout& table, size_t num_rows, Rng* rng) {
  if (num_rows > table.rows.size()) {
    return Status::InvalidArgument("table has only " +
                                   std::to_string(table.rows.size()) +
                                   " rows");
  }
  ComplexOpScript script;
  script.table = table.table_id;
  script.num_attributes = table.num_attributes;
  for (storage::ObjectId row : SampleDistinct(table.rows, num_rows, rng)) {
    PrimitiveOp op;
    op.kind = PrimitiveOp::Kind::kDeleteRow;
    op.row = row;
    script.ops.push_back(op);
  }
  return script;
}

Result<ComplexOpScript> MakeInsertScript(
    const SyntheticLayout::TableLayout& table, size_t num_rows, Rng* rng) {
  ComplexOpScript script;
  script.table = table.table_id;
  script.num_attributes = table.num_attributes;
  for (size_t i = 0; i < num_rows; ++i) {
    PrimitiveOp op;
    op.kind = PrimitiveOp::Kind::kInsertRow;
    op.value = static_cast<int64_t>(rng->NextBelow(1000000));
    script.ops.push_back(op);
  }
  return script;
}

Result<ComplexOpScript> MakeMixedScript(
    const SyntheticLayout::TableLayout& table, size_t deletes, size_t inserts,
    size_t updates, Rng* rng) {
  if (deletes + updates > table.rows.size()) {
    return Status::InvalidArgument(
        "not enough rows for disjoint delete and update targets");
  }
  // Disjoint row samples: deleted rows must not also be update targets.
  std::vector<storage::ObjectId> sample =
      SampleDistinct(table.rows, deletes + updates, rng);

  ComplexOpScript script;
  script.table = table.table_id;
  script.num_attributes = table.num_attributes;
  for (size_t i = 0; i < deletes; ++i) {
    PrimitiveOp op;
    op.kind = PrimitiveOp::Kind::kDeleteRow;
    op.row = sample[i];
    script.ops.push_back(op);
  }
  for (size_t i = 0; i < inserts; ++i) {
    PrimitiveOp op;
    op.kind = PrimitiveOp::Kind::kInsertRow;
    op.value = static_cast<int64_t>(rng->NextBelow(1000000));
    script.ops.push_back(op);
  }
  for (size_t i = 0; i < updates; ++i) {
    PrimitiveOp op;
    op.kind = PrimitiveOp::Kind::kUpdateCell;
    op.row = sample[deletes + i];
    op.column = static_cast<size_t>(
        rng->NextBelow(static_cast<uint64_t>(table.num_attributes)));
    op.value = static_cast<int64_t>(rng->NextBelow(1000000));
    script.ops.push_back(op);
  }
  // Shuffle the primitive order, as a realistic interleaved transaction.
  for (size_t i = script.ops.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng->NextBelow(i));
    std::swap(script.ops[i - 1], script.ops[j]);
  }
  return script;
}

namespace {

// Runs the script's primitives inside an already-begun complex operation.
Status ExecutePrimitives(provenance::TrackedDatabase* db,
                         const crypto::Participant& p,
                         const ComplexOpScript& script, Rng* rng) {
  for (const PrimitiveOp& op : script.ops) {
    switch (op.kind) {
      case PrimitiveOp::Kind::kUpdateCell: {
        PROVDB_ASSIGN_OR_RETURN(storage::ObjectId cell,
                                CellIdOf(db->tree(), op.row, op.column));
        PROVDB_RETURN_IF_ERROR(
            db->Update(p, cell, storage::Value::Int(op.value)));
        break;
      }
      case PrimitiveOp::Kind::kDeleteRow: {
        PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* row,
                                db->tree().GetNode(op.row));
        std::vector<storage::ObjectId> cells = row->children;
        for (storage::ObjectId cell : cells) {
          PROVDB_RETURN_IF_ERROR(db->Delete(p, cell));
        }
        PROVDB_RETURN_IF_ERROR(db->Delete(p, op.row));
        break;
      }
      case PrimitiveOp::Kind::kInsertRow: {
        PROVDB_ASSIGN_OR_RETURN(
            storage::ObjectId row,
            db->Insert(p, storage::Value::Int(op.value), script.table));
        for (int c = 0; c < script.num_attributes; ++c) {
          PROVDB_RETURN_IF_ERROR(
              db->Insert(p,
                         storage::Value::Int(static_cast<int64_t>(
                             rng->NextBelow(1000000))),
                         row)
                  .status());
        }
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status ExecuteAsComplexOperation(provenance::TrackedDatabase* db,
                                 const crypto::Participant& p,
                                 const ComplexOpScript& script, Rng* rng) {
  PROVDB_RETURN_IF_ERROR(db->BeginComplexOperation(p));
  Status body = ExecutePrimitives(db, p, script, rng);
  if (!body.ok()) {
    // Close the operation so the database stays usable; the mutations
    // applied so far are still documented with records.
    db->EndComplexOperation().ok();
    return body;
  }
  return db->EndComplexOperation();
}

const std::vector<MixSpec>& PaperSetupCMixes() {
  // Table 2, Experimental Setup C: four mixes of 500 operations each.
  static const std::vector<MixSpec> mixes = {
      {96, 189, 215},   // 19.2% / 37.8% / 43%
      {183, 152, 165},  // 36.6% / 30.4% / 33%
      {285, 106, 109},  // 57%   / 21.2% / 21.8%
      {391, 49, 60},    // 78.2% / 9.8%  / 12%
  };
  return mixes;
}

}  // namespace provdb::workload
