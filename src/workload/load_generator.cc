#include "workload/load_generator.h"

#include <future>
#include <utility>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "crypto/digest.h"
#include "net/client.h"
#include "net/wire.h"
#include "workload/zipf.h"

namespace provdb::workload {

namespace {

/// One simulated client: a connection plus the local view of its chains.
struct ClientState {
  explicit ClientState(net::ProvenanceClient connection)
      : conn(std::move(connection)) {}

  net::ProvenanceClient conn;

  struct ObjectView {
    bool exists = false;
    crypto::Digest last;  // post-hash of the last *accepted* record
  };
  std::vector<ObjectView> objects;
  /// Object indices with a request in flight this batch.
  std::vector<uint8_t> in_flight;

  Rng rng{0};
  uint64_t remaining = 0;
  uint64_t request_counter = 0;
};

/// A sent-but-unanswered submit; applied to ObjectView iff the response
/// is OK.
struct PendingSubmit {
  size_t object_index;
  crypto::Digest post_hash;
};

struct DriverStats {
  uint64_t requests_sent = 0;
  uint64_t accepted = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
};

crypto::Digest RandomDigest(Rng* rng, size_t hash_bytes) {
  Bytes raw;
  rng->NextBytes(&raw, hash_bytes);
  return crypto::Digest::FromBytes(raw);
}

/// Sends up to `pipeline_depth` submits on one connection, then reads
/// their responses. Returns the number of requests sent, or an error on
/// transport failure.
Result<size_t> RunBatch(const LoadOptions& options,
                        const ZipfGenerator& zipf, size_t client_index,
                        ClientState* client, DriverStats* stats) {
  std::vector<PendingSubmit> batch;
  const size_t depth =
      options.pipeline_depth == 0 ? 1 : options.pipeline_depth;
  while (batch.size() < depth && client->remaining > 0 &&
         batch.size() < client->objects.size()) {
    size_t k = static_cast<size_t>(zipf.Next(&client->rng));
    // One in-flight request per object: an accepted update must chain off
    // an *acknowledged* post-hash, never an optimistic one that admission
    // control might shed. Linear-probe to the next idle object (the guard
    // above caps the batch at the slice size, so one always exists).
    while (client->in_flight[k]) k = (k + 1) % client->objects.size();
    client->in_flight[k] = 1;

    ClientState::ObjectView& view = client->objects[k];
    net::Request request;
    request.op = net::NetOp::kSubmitRecord;
    request.submit.participant_id =
        options.participant_ids[client->request_counter %
                                options.participant_ids.size()];
    request.submit.op = view.exists ? provenance::OperationType::kUpdate
                                    : provenance::OperationType::kInsert;
    request.submit.object =
        options.first_object +
        static_cast<storage::ObjectId>(k * options.num_clients +
                                       client_index);
    request.submit.post_hash =
        RandomDigest(&client->rng, options.hash_bytes);
    if (view.exists) {
      request.submit.has_pre_hash = true;
      request.submit.pre_hash = view.last;
    }
    PROVDB_RETURN_IF_ERROR(client->conn.SendRequest(request));
    batch.push_back(PendingSubmit{k, request.submit.post_hash});
    ++client->request_counter;
    --client->remaining;
  }

  for (const PendingSubmit& pending : batch) {
    PROVDB_ASSIGN_OR_RETURN(net::Response response,
                            client->conn.ReadResponse());
    client->in_flight[pending.object_index] = 0;
    if (response.ok()) {
      ++stats->accepted;
      ClientState::ObjectView& view = client->objects[pending.object_index];
      view.exists = true;
      view.last = pending.post_hash;
    } else if (response.code == StatusCode::kUnavailable) {
      ++stats->shed;
    } else {
      ++stats->failed;
    }
  }
  stats->requests_sent += batch.size();
  return batch.size();
}

/// Runs clients [begin, end) round-robin, one batch per turn, until all
/// have issued their full request budget.
Result<DriverStats> RunDriver(const LoadOptions& options,
                              const ZipfGenerator& zipf,
                              std::vector<ClientState>* clients,
                              size_t begin, size_t end) {
  DriverStats stats;
  bool any_active = true;
  while (any_active) {
    any_active = false;
    for (size_t c = begin; c < end; ++c) {
      ClientState& client = (*clients)[c];
      if (client.remaining == 0) continue;
      PROVDB_RETURN_IF_ERROR(
          RunBatch(options, zipf, c, &client, &stats).status());
      any_active = any_active || client.remaining > 0;
    }
  }
  return stats;
}

}  // namespace

Result<LoadReport> RunLoad(const LoadOptions& options) {
  if (options.num_clients == 0) {
    return Status::InvalidArgument("num_clients must be positive");
  }
  if (options.objects_per_client == 0) {
    return Status::InvalidArgument("objects_per_client must be positive");
  }
  if (options.participant_ids.empty()) {
    return Status::InvalidArgument("participant_ids must be non-empty");
  }

  std::vector<ClientState> clients;
  clients.reserve(options.num_clients);
  for (size_t c = 0; c < options.num_clients; ++c) {
    PROVDB_ASSIGN_OR_RETURN(
        net::ProvenanceClient conn,
        net::ProvenanceClient::Connect(options.host, options.port));
    ClientState client(std::move(conn));
    client.objects.resize(options.objects_per_client);
    client.in_flight.assign(options.objects_per_client, 0);
    // Distinct odd multiplier per client: fixed seed -> fixed workload,
    // but no two clients replay the same key/hash sequence.
    client.rng = Rng(options.seed ^ (0x9E3779B97F4A7C15ull * (c + 1)));
    client.remaining = options.requests_per_client;
    clients.push_back(std::move(client));
  }

  // All clients share one slice size and skew; ZipfGenerator::Next is
  // const (the caller's Rng carries the state), so one shared instance
  // serves every driver thread.
  const ZipfGenerator zipf(options.objects_per_client, options.zipf_theta);

  size_t num_drivers = options.num_driver_threads;
  if (num_drivers == 0) {
    num_drivers = static_cast<size_t>(ParallelismConfig::Hardware()
                                          .num_threads);
  }
  if (num_drivers > options.num_clients) num_drivers = options.num_clients;

  // Contiguous client slices per driver; a client is owned by exactly one
  // driver thread, so client state needs no locking.
  const size_t per_driver =
      (options.num_clients + num_drivers - 1) / num_drivers;

  Stopwatch wall;
  std::vector<std::future<Result<DriverStats>>> futures;
  {
    ThreadPool pool(num_drivers);
    for (size_t d = 0; d < num_drivers; ++d) {
      const size_t begin = d * per_driver;
      const size_t end = begin + per_driver < options.num_clients
                             ? begin + per_driver
                             : options.num_clients;
      if (begin >= end) break;
      futures.push_back(pool.Submit([&options, &zipf, &clients, begin, end] {
        return RunDriver(options, zipf, &clients, begin, end);
      }));
    }
    // ThreadPool::~ThreadPool drains the queue; futures are ready after.
  }

  LoadReport report;
  for (auto& future : futures) {
    PROVDB_ASSIGN_OR_RETURN(DriverStats stats, future.get());
    report.requests_sent += stats.requests_sent;
    report.accepted += stats.accepted;
    report.shed += stats.shed;
    report.failed += stats.failed;
  }
  report.elapsed_seconds = wall.ElapsedSeconds();
  report.records_per_second =
      report.elapsed_seconds > 0
          ? static_cast<double>(report.accepted) / report.elapsed_seconds
          : 0;
  return report;
}

}  // namespace provdb::workload
