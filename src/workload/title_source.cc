#include "workload/title_source.h"

namespace provdb::workload {

TitleTableSource::TitleTableSource(uint64_t num_rows, uint64_t seed)
    : num_rows_(num_rows), rng_(seed) {}

bool TitleTableSource::Next(Row* row) {
  if (produced_ >= num_rows_) {
    return false;
  }
  storage::ObjectId base = 3 + produced_ * 3;
  row->row_id = base;
  row->row_value = storage::Value::Int(static_cast<int64_t>(produced_));
  row->cells.clear();
  row->cells.emplace_back(
      base + 1,
      storage::Value::Int(static_cast<int64_t>(rng_.NextBelow(100000000))));
  size_t title_len = 10 + static_cast<size_t>(rng_.NextBelow(40));
  row->cells.emplace_back(base + 2,
                          storage::Value::String(rng_.NextString(title_len)));
  ++produced_;
  return true;
}

}  // namespace provdb::workload
