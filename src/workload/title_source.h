#ifndef PROVDB_WORKLOAD_TITLE_SOURCE_H_
#define PROVDB_WORKLOAD_TITLE_SOURCE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "storage/tree_store.h"
#include "storage/value.h"

namespace provdb::workload {

/// Synthetic stand-in for the paper's large-scale "Title" table (§5.2):
/// 18,962,041 rows with two fields, Document ID (integer) and Title
/// (varchar), for 56,886,125 nodes total. The paper's table was a
/// proprietary snapshot; this source generates an equivalent stream of
/// rows with deterministic object ids so the streaming-hash code path is
/// exercised identically — the row count is configurable so the experiment
/// scales from seconds to the paper's full size.
class TitleTableSource {
 public:
  static constexpr uint64_t kPaperRowCount = 18962041;

  /// Ids are assigned deterministically: database root = 1, table = 2,
  /// then (row, docid-cell, title-cell) triples from 3 upward.
  TitleTableSource(uint64_t num_rows, uint64_t seed);

  storage::ObjectId database_id() const { return 1; }
  storage::ObjectId table_id() const { return 2; }
  storage::Value database_value() const {
    return storage::Value::String("title_db");
  }
  storage::Value table_value() const {
    return storage::Value::String("Title");
  }

  struct Row {
    storage::ObjectId row_id;
    storage::Value row_value;
    /// (cell id, value) pairs in ascending id order: Document ID, Title.
    std::vector<std::pair<storage::ObjectId, storage::Value>> cells;
  };

  /// Produces the next row; returns false when `num_rows` rows have been
  /// emitted.
  bool Next(Row* row);

  uint64_t num_rows() const { return num_rows_; }
  uint64_t rows_produced() const { return produced_; }

  /// Total node count of the equivalent tree: root + table + 3 per row.
  uint64_t TotalNodes() const { return 2 + 3 * num_rows_; }

 private:
  uint64_t num_rows_;
  uint64_t produced_ = 0;
  Rng rng_;
};

}  // namespace provdb::workload

#endif  // PROVDB_WORKLOAD_TITLE_SOURCE_H_
