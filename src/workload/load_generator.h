#ifndef PROVDB_WORKLOAD_LOAD_GENERATOR_H_
#define PROVDB_WORKLOAD_LOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/tree_store.h"

namespace provdb::workload {

/// Multi-client driver for the provenance service (net/server.h).
///
/// Simulates `num_clients` independent clients, each holding its own
/// connection, multiplexed over `num_driver_threads` OS threads (a 512-
/// client phase does not need 512 threads — connections idle cheaply,
/// threads do not). Each client owns a disjoint slice of the object space
/// (object ids are striped client-by-client), so no two clients ever
/// append to the same chain and every accepted record extends a chain the
/// submitting client has fully observed. Within its slice a client picks
/// objects Zipf-skewed, so hot chains grow long while cold ones stay
/// short — the shape that stresses the server's per-chain tail tracking.
///
/// A client's first touch of an object is an insert; later touches are
/// updates carrying the previous accepted post-hash as the pre-hash, so a
/// post-run VerifyChains sees perfectly linked chains. Two rules keep
/// that true under load shedding:
///   * at most one request per object is in flight (a shed request must
///     not strand later updates built on its unacknowledged hash), and
///   * local chain state advances only on an OK response — a shed or
///     failed submit leaves the object exactly as it was.
///
/// Requests are pipelined `pipeline_depth` deep per connection; the
/// server responds in order, so responses pair with requests positionally.
struct LoadOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  size_t num_clients = 1;
  /// 0 = min(num_clients, hardware threads).
  size_t num_driver_threads = 0;

  uint64_t requests_per_client = 256;
  uint64_t objects_per_client = 64;
  /// Zipf skew within each client's object slice, in (0, 1).
  double zipf_theta = 0.99;
  /// Submits in flight per connection. Keep at or below the server's
  /// max_pending_per_connection or the surplus is shed by design.
  size_t pipeline_depth = 16;

  /// Participant ids the server recognizes; submits round-robin these.
  /// Must be non-empty.
  std::vector<uint64_t> participant_ids;
  /// First object id of the striped space (client c's k-th object is
  /// first_object + k * num_clients + c).
  storage::ObjectId first_object = 1;
  /// Width of the synthetic state hashes (SHA-1-sized by default).
  size_t hash_bytes = 20;
  uint64_t seed = 42;
};

struct LoadReport {
  uint64_t requests_sent = 0;
  /// OK submit responses (durable per the server's write-ahead contract).
  uint64_t accepted = 0;
  /// kUnavailable responses (admission control shed the request).
  uint64_t shed = 0;
  /// Any other non-OK response.
  uint64_t failed = 0;
  /// Wall time of the request phase (connections established beforehand).
  double elapsed_seconds = 0;
  double records_per_second = 0;
};

/// Runs the workload to completion. Fails on transport errors (a shed
/// request is an orderly response, not a transport error).
Result<LoadReport> RunLoad(const LoadOptions& options);

}  // namespace provdb::workload

#endif  // PROVDB_WORKLOAD_LOAD_GENERATOR_H_
