#include "workload/synthetic.h"

#include <string>

namespace provdb::workload {

const std::vector<SyntheticTableSpec>& PaperTableSpecs() {
  static const std::vector<SyntheticTableSpec> specs = {
      {8, 4000},
      {9, 3000},
      {10, 2000},
      {5, 5000},
  };
  return specs;
}

size_t ExpectedNodeCount(const std::vector<SyntheticTableSpec>& specs) {
  size_t count = 1;  // database root
  for (const SyntheticTableSpec& spec : specs) {
    count += 1;                                      // table node
    count += static_cast<size_t>(spec.num_rows);     // row nodes
    count += static_cast<size_t>(spec.num_rows) *
             static_cast<size_t>(spec.num_attributes);  // cells
  }
  return count;
}

Result<SyntheticLayout> BuildSyntheticDatabase(
    storage::TreeStore* tree, const std::vector<SyntheticTableSpec>& specs,
    Rng* rng) {
  SyntheticLayout layout;
  PROVDB_ASSIGN_OR_RETURN(layout.root,
                          tree->Insert(storage::Value::String("synthetic_db")));
  for (size_t t = 0; t < specs.size(); ++t) {
    const SyntheticTableSpec& spec = specs[t];
    SyntheticLayout::TableLayout table;
    table.num_attributes = spec.num_attributes;
    PROVDB_ASSIGN_OR_RETURN(
        table.table_id,
        tree->Insert(storage::Value::String("table" + std::to_string(t + 1)),
                     layout.root));
    table.rows.reserve(spec.num_rows);
    for (int r = 0; r < spec.num_rows; ++r) {
      PROVDB_ASSIGN_OR_RETURN(
          storage::ObjectId row,
          tree->Insert(storage::Value::Int(r), table.table_id));
      for (int c = 0; c < spec.num_attributes; ++c) {
        PROVDB_RETURN_IF_ERROR(
            tree->Insert(storage::Value::Int(static_cast<int64_t>(
                             rng->NextBelow(1000000))),
                         row)
                .status());
      }
      table.rows.push_back(row);
    }
    layout.tables.push_back(std::move(table));
  }
  return layout;
}

Result<storage::ObjectId> CellIdOf(const storage::TreeStore& tree,
                                   storage::ObjectId row, size_t column) {
  PROVDB_ASSIGN_OR_RETURN(const storage::TreeNode* node, tree.GetNode(row));
  if (column >= node->children.size()) {
    return Status::OutOfRange("column " + std::to_string(column) +
                              " out of range for row " + std::to_string(row));
  }
  return node->children[column];
}

}  // namespace provdb::workload
