#ifndef PROVDB_WORKLOAD_SYNTHETIC_H_
#define PROVDB_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "storage/tree_store.h"

namespace provdb::workload {

/// One synthetic table, per Table 1(a) of the paper (all attributes are
/// integers).
struct SyntheticTableSpec {
  int num_attributes = 0;
  int num_rows = 0;
};

/// The paper's four synthetic tables (Table 1(a)):
///   #1: 8 attrs x 4000 rows     #2: 9 attrs x 3000 rows
///   #3: 10 attrs x 2000 rows    #4: 5 attrs x 5000 rows
const std::vector<SyntheticTableSpec>& PaperTableSpecs();

/// Number of tree nodes a database built from `specs` occupies:
/// 1 root + tables + rows + cells. For the paper's four cumulative
/// combinations this yields 36002 / 66003 / 88004 / 118005. (The paper's
/// Table 1(b) prints 36002 / 66000 / 88004 / 118006 — the 2nd and 4th
/// entries appear to carry +-2 arithmetic slips; see EXPERIMENTS.md.)
size_t ExpectedNodeCount(const std::vector<SyntheticTableSpec>& specs);

/// Object-id map of a built synthetic database, used by operation scripts
/// to address rows and cells.
struct SyntheticLayout {
  storage::ObjectId root = storage::kInvalidObjectId;

  struct TableLayout {
    storage::ObjectId table_id = storage::kInvalidObjectId;
    std::vector<storage::ObjectId> rows;
    int num_attributes = 0;
  };
  std::vector<TableLayout> tables;
};

/// Builds a depth-4 synthetic database (root → tables → rows → integer
/// cells) directly into `tree` (untracked: this is the initial state that
/// exists before provenance collection begins, as in §5). Cell values are
/// drawn from `rng`, so a fixed seed reproduces the same database.
Result<SyntheticLayout> BuildSyntheticDatabase(
    storage::TreeStore* tree, const std::vector<SyntheticTableSpec>& specs,
    Rng* rng);

/// Cell object id at (row, column) — columns indexed 0-based in the
/// ascending-child-id order.
Result<storage::ObjectId> CellIdOf(const storage::TreeStore& tree,
                                   storage::ObjectId row, size_t column);

}  // namespace provdb::workload

#endif  // PROVDB_WORKLOAD_SYNTHETIC_H_
