#ifndef PROVDB_WORKLOAD_OPERATIONS_H_
#define PROVDB_WORKLOAD_OPERATIONS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/pki.h"
#include "provenance/tracked_database.h"
#include "workload/synthetic.h"

namespace provdb::workload {

/// One primitive of a synthetic complex operation (row-granularity inserts
/// and deletes; cell-granularity updates), as in Table 2 of the paper.
struct PrimitiveOp {
  enum class Kind { kInsertRow, kDeleteRow, kUpdateCell };
  Kind kind = Kind::kUpdateCell;
  /// Row the primitive targets (kDeleteRow / kUpdateCell); ignored for
  /// inserts.
  storage::ObjectId row = storage::kInvalidObjectId;
  /// Column for kUpdateCell.
  size_t column = 0;
  /// New value (kUpdateCell) / cell values seed (kInsertRow).
  int64_t value = 0;
};

/// A scripted complex operation against one synthetic table.
struct ComplexOpScript {
  storage::ObjectId table = storage::kInvalidObjectId;
  int num_attributes = 0;
  std::vector<PrimitiveOp> ops;
};

/// Experimental Setup A (Fig. 7): `num_updates` cell updates spread over
/// `num_rows` distinct rows of the table (one or more cells per row).
Result<ComplexOpScript> MakeUpdateScript(
    const SyntheticLayout::TableLayout& table, size_t num_updates,
    size_t num_rows, Rng* rng);

/// Experimental Setup B items: all-deletes / all-inserts scripts.
Result<ComplexOpScript> MakeDeleteScript(
    const SyntheticLayout::TableLayout& table, size_t num_rows, Rng* rng);
Result<ComplexOpScript> MakeInsertScript(
    const SyntheticLayout::TableLayout& table, size_t num_rows, Rng* rng);

/// Experimental Setup C (Figs. 10/11): a mixed script of `deletes` row
/// deletions, `inserts` row insertions, and `updates` cell updates, in
/// shuffled order. Deleted rows are chosen distinct from updated rows.
Result<ComplexOpScript> MakeMixedScript(
    const SyntheticLayout::TableLayout& table, size_t deletes, size_t inserts,
    size_t updates, Rng* rng);

/// Executes `script` as a single complex operation (§4.4) on `db`,
/// attributed to `p`. Row deletion expands into leaf-wise primitive
/// deletes (cells, then the row); row insertion inserts the row node and
/// its cells. Metrics are available via db->last_op_metrics().
Status ExecuteAsComplexOperation(provenance::TrackedDatabase* db,
                                 const crypto::Participant& p,
                                 const ComplexOpScript& script, Rng* rng);

/// The four Setup C mixes from Table 2, as (deletes, inserts, updates) out
/// of 500 operations.
struct MixSpec {
  size_t deletes;
  size_t inserts;
  size_t updates;
};
const std::vector<MixSpec>& PaperSetupCMixes();

}  // namespace provdb::workload

#endif  // PROVDB_WORKLOAD_OPERATIONS_H_
