#include "crypto/pki.h"

#include "common/varint.h"

namespace provdb::crypto {

Bytes ParticipantCertificate::ToBeSignedBytes() const {
  Bytes out;
  AppendVarint64(&out, participant_id);
  AppendLengthPrefixed(&out, ByteView(name));
  AppendLengthPrefixed(&out, public_key.Serialize());
  return out;
}

Result<CertificateAuthority> CertificateAuthority::Create(size_t modulus_bits,
                                                          Rng* rng) {
  PROVDB_ASSIGN_OR_RETURN(RsaKeyPair pair,
                          GenerateRsaKeyPair(modulus_bits, rng));
  PROVDB_ASSIGN_OR_RETURN(RsaSigner signer, RsaSigner::Create(pair.private_key));
  return CertificateAuthority(std::make_unique<RsaSigner>(std::move(signer)),
                              pair.public_key);
}

Result<ParticipantCertificate> CertificateAuthority::IssueCertificate(
    ParticipantId id, std::string name, const RsaPublicKey& key) const {
  ParticipantCertificate cert;
  cert.participant_id = id;
  cert.name = std::move(name);
  cert.public_key = key;
  PROVDB_ASSIGN_OR_RETURN(cert.ca_signature,
                          signer_->Sign(cert.ToBeSignedBytes()));
  return cert;
}

Status VerifyCertificate(const RsaPublicKey& ca_key,
                         const ParticipantCertificate& cert) {
  RsaSignatureVerifier verifier(ca_key);
  Status s = verifier.Verify(cert.ToBeSignedBytes(), cert.ca_signature);
  if (!s.ok()) {
    return Status::VerificationFailed("certificate signature invalid for '" +
                                      cert.name + "'");
  }
  return Status::OK();
}

Status ParticipantRegistry::Register(const ParticipantCertificate& cert) {
  PROVDB_RETURN_IF_ERROR(VerifyCertificate(ca_key_, cert));
  auto it = certs_.find(cert.participant_id);
  if (it != certs_.end()) {
    if (it->second.public_key == cert.public_key) {
      return Status::OK();  // idempotent re-registration
    }
    return Status::AlreadyExists("participant id already bound to a key");
  }
  certs_.emplace(cert.participant_id, cert);
  return Status::OK();
}

Result<ParticipantCertificate> ParticipantRegistry::Lookup(
    ParticipantId id) const {
  auto it = certs_.find(id);
  if (it == certs_.end()) {
    return Status::NotFound("no certificate for participant " +
                            std::to_string(id));
  }
  return it->second;
}

Result<RsaPublicKey> ParticipantRegistry::LookupKey(ParticipantId id) const {
  PROVDB_ASSIGN_OR_RETURN(ParticipantCertificate cert, Lookup(id));
  return cert.public_key;
}

Result<Participant> Participant::Create(ParticipantId id, std::string name,
                                        size_t modulus_bits, Rng* rng,
                                        const CertificateAuthority& ca,
                                        HashAlgorithm signature_hash) {
  PROVDB_ASSIGN_OR_RETURN(RsaKeyPair pair,
                          GenerateRsaKeyPair(modulus_bits, rng));
  PROVDB_ASSIGN_OR_RETURN(ParticipantCertificate cert,
                          ca.IssueCertificate(id, name, pair.public_key));
  PROVDB_ASSIGN_OR_RETURN(RsaSigner signer,
                          RsaSigner::Create(pair.private_key, signature_hash));
  return Participant(id, std::move(name), std::move(cert),
                     std::make_unique<RsaSigner>(std::move(signer)));
}

}  // namespace provdb::crypto
