#ifndef PROVDB_CRYPTO_RSA_H_
#define PROVDB_CRYPTO_RSA_H_

#include <cstddef>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/bignum.h"
#include "crypto/digest.h"
#include "crypto/hash.h"

namespace provdb::crypto {

/// RSA public key (n, e). Signature length equals ModulusBytes() — 128
/// bytes for the paper's 1024-bit configuration (§5.1).
struct RsaPublicKey {
  BigUInt n;
  BigUInt e;

  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }

  /// Length-prefixed binary encoding (used inside PKI certificates).
  Bytes Serialize() const;
  static Result<RsaPublicKey> Deserialize(ByteView data);

  bool operator==(const RsaPublicKey& o) const {
    return n == o.n && e == o.e;
  }
};

/// RSA private key with CRT components for fast signing.
struct RsaPrivateKey {
  BigUInt n;
  BigUInt e;
  BigUInt d;
  BigUInt p;
  BigUInt q;
  BigUInt dp;    // d mod (p-1)
  BigUInt dq;    // d mod (q-1)
  BigUInt qinv;  // q^-1 mod p

  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }

  RsaPublicKey PublicKey() const { return RsaPublicKey{n, e}; }
};

/// A generated key pair.
struct RsaKeyPair {
  RsaPublicKey public_key;
  RsaPrivateKey private_key;
};

/// Miller–Rabin primality test with `rounds` random witnesses (plus the
/// small deterministic bases). Returns true for "probably prime".
bool IsProbablePrime(const BigUInt& n, Rng* rng, int rounds = 20);

/// Generates a random probable prime with exactly `bits` bits (top two
/// bits set so products reach the target modulus size).
Result<BigUInt> GeneratePrime(size_t bits, Rng* rng);

/// Generates an RSA key pair with an exactly `modulus_bits`-bit modulus and
/// public exponent 65537. Deterministic given the RNG seed, which keeps
/// tests and benchmarks reproducible. `modulus_bits` must be >= 128 and
/// even. The paper's configuration is 1024.
Result<RsaKeyPair> GenerateRsaKeyPair(size_t modulus_bits, Rng* rng);

/// Signs a message digest: PKCS#1 v1.5-style encoding
/// `0x00 01 FF..FF 00 <alg-tag byte> <digest>`, then RSA-CRT private-key
/// exponentiation. (The alg tag is a 1-byte stand-in for the ASN.1
/// DigestInfo header of full PKCS#1; the security argument is unchanged.)
/// The result is exactly ModulusBytes() long.
Result<Bytes> RsaSignDigest(const RsaPrivateKey& key, HashAlgorithm alg,
                            const Digest& digest);

/// Verifies a signature produced by RsaSignDigest. OK on success;
/// kVerificationFailed when the signature does not match. Callers that
/// verify repeatedly under one key should pass `n_ctx`, a Montgomery
/// context for key.n (RsaSignatureVerifier does): without it every call
/// re-derives the context from scratch.
Status RsaVerifyDigest(const RsaPublicKey& key, HashAlgorithm alg,
                       const Digest& digest, ByteView signature,
                       const MontgomeryContext* n_ctx = nullptr);

/// Precomputed signing context: builds the per-prime Montgomery contexts
/// once and reuses them for every signature. Checksum generation signs
/// thousands of records per complex operation, so this matters.
class RsaSigningContext {
 public:
  static Result<RsaSigningContext> Create(const RsaPrivateKey& key);

  /// Same encoding/semantics as RsaSignDigest.
  Result<Bytes> SignDigest(HashAlgorithm alg, const Digest& digest) const;

  const RsaPrivateKey& key() const { return key_; }

 private:
  RsaSigningContext(RsaPrivateKey key, MontgomeryContext p_ctx,
                    MontgomeryContext q_ctx)
      : key_(std::move(key)), p_ctx_(std::move(p_ctx)),
        q_ctx_(std::move(q_ctx)) {}

  RsaPrivateKey key_;
  MontgomeryContext p_ctx_;
  MontgomeryContext q_ctx_;
};

}  // namespace provdb::crypto

#endif  // PROVDB_CRYPTO_RSA_H_
