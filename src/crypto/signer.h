#ifndef PROVDB_CRYPTO_SIGNER_H_
#define PROVDB_CRYPTO_SIGNER_H_

#include <memory>
#include <optional>
#include <string_view>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/hash.h"
#include "crypto/rsa.h"

namespace provdb::crypto {

/// Produces signatures over arbitrary messages (hash-then-sign). The
/// checksum scheme signs the concatenation `h(in)|h(out)|C_prev` with the
/// acting participant's key — this is `S_SK_p(...)` in the paper (§2.3).
class Signer {
 public:
  virtual ~Signer() = default;

  /// Signs `message`. The returned signature has `signature_size()` bytes.
  virtual Result<Bytes> Sign(ByteView message) const = 0;

  /// Signature length in bytes (128 for RSA-1024, as in the paper).
  virtual size_t signature_size() const = 0;

  /// Human-readable scheme name, e.g. "RSA-1024/SHA-1".
  virtual std::string scheme_name() const = 0;
};

/// Checks signatures produced by a matching Signer.
class SignatureVerifier {
 public:
  virtual ~SignatureVerifier() = default;

  /// OK when `signature` is a valid signature of `message`;
  /// kVerificationFailed otherwise.
  virtual Status Verify(ByteView message, ByteView signature) const = 0;
};

/// RSA hash-then-sign signer. Precomputes CRT Montgomery contexts once.
class RsaSigner final : public Signer {
 public:
  static Result<RsaSigner> Create(const RsaPrivateKey& key,
                                  HashAlgorithm alg = HashAlgorithm::kSha1);

  Result<Bytes> Sign(ByteView message) const override;
  size_t signature_size() const override;
  std::string scheme_name() const override;

  const RsaPublicKey& public_key() const { return public_key_; }

 private:
  RsaSigner(RsaSigningContext ctx, RsaPublicKey pub, HashAlgorithm alg)
      : ctx_(std::move(ctx)), public_key_(std::move(pub)), alg_(alg) {}

  RsaSigningContext ctx_;
  RsaPublicKey public_key_;
  HashAlgorithm alg_;
};

/// Verifier for RsaSigner signatures. Derives the Montgomery context for
/// the key once at construction and reuses it for every Verify call —
/// the verify-side analogue of RsaSigningContext (chain verification
/// checks one signature per record under the same handful of keys).
class RsaSignatureVerifier final : public SignatureVerifier {
 public:
  RsaSignatureVerifier(RsaPublicKey key,
                       HashAlgorithm alg = HashAlgorithm::kSha1);

  Status Verify(ByteView message, ByteView signature) const override;

 private:
  RsaPublicKey key_;
  HashAlgorithm alg_;
  // nullopt only for a degenerate key (even modulus); Verify then falls
  // back to the per-call path, which reports the failure.
  std::optional<MontgomeryContext> n_ctx_;
};

/// Symmetric HMAC "signer" for the ablation benchmarks: roughly three
/// orders of magnitude faster than RSA but sacrifices non-repudiation (R8)
/// because every holder of the key can forge. Implements both interfaces.
class HmacSigner final : public Signer, public SignatureVerifier {
 public:
  HmacSigner(Bytes key, HashAlgorithm alg = HashAlgorithm::kSha1)
      : key_(std::move(key)), alg_(alg) {}

  Result<Bytes> Sign(ByteView message) const override;
  size_t signature_size() const override { return HashDigestSize(alg_); }
  std::string scheme_name() const override;

  Status Verify(ByteView message, ByteView signature) const override;

 private:
  Bytes key_;
  HashAlgorithm alg_;
};

}  // namespace provdb::crypto

#endif  // PROVDB_CRYPTO_SIGNER_H_
