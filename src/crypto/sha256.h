#ifndef PROVDB_CRYPTO_SHA256_H_
#define PROVDB_CRYPTO_SHA256_H_

#include <cstdint>

#include "crypto/hash.h"

namespace provdb::crypto {

/// SHA-256 (FIPS PUB 180-2). 32-byte digests. Modern drop-in replacement
/// for the paper's SHA-1 configuration.
class Sha256Hasher final : public Hasher {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256Hasher() { Reset(); }

  void Reset() override;
  void Update(ByteView data) override;
  Digest Finish() override;

  size_t digest_size() const override { return kDigestSize; }
  HashAlgorithm algorithm() const override { return HashAlgorithm::kSha256; }

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[8];
  uint64_t total_bytes_;
  uint8_t buffer_[kBlockSize];
  size_t buffered_;
};

}  // namespace provdb::crypto

#endif  // PROVDB_CRYPTO_SHA256_H_
