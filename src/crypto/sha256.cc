#include "crypto/sha256.h"

#include <cstring>

namespace provdb::crypto {

namespace {

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

inline uint32_t LoadBigEndian32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}

inline void StoreBigEndian32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

}  // namespace

void Sha256Hasher::Reset() {
  h_[0] = 0x6a09e667u;
  h_[1] = 0xbb67ae85u;
  h_[2] = 0x3c6ef372u;
  h_[3] = 0xa54ff53au;
  h_[4] = 0x510e527fu;
  h_[5] = 0x9b05688cu;
  h_[6] = 0x1f83d9abu;
  h_[7] = 0x5be0cd19u;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha256Hasher::Update(ByteView data) {
  // Empty views carry data() == nullptr, which memcpy below must not
  // see even when take == 0.
  if (data.empty()) return;
  total_bytes_ += data.size();
  size_t pos = 0;
  if (buffered_ > 0) {
    size_t need = kBlockSize - buffered_;
    size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    pos += take;
    if (buffered_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (pos + kBlockSize <= data.size()) {
    ProcessBlock(data.data() + pos);
    pos += kBlockSize;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_, data.data() + pos, data.size() - pos);
    buffered_ = data.size() - pos;
  }
}

Digest Sha256Hasher::Finish() {
  uint64_t bit_length = total_bytes_ * 8;
  uint8_t pad[kBlockSize * 2];
  size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  size_t rem = (buffered_ + 1) % kBlockSize;
  size_t zeros = (rem <= 56) ? (56 - rem) : (kBlockSize + 56 - rem);
  std::memset(pad + pad_len, 0, zeros);
  pad_len += zeros;
  for (int i = 7; i >= 0; --i) {
    pad[pad_len++] = static_cast<uint8_t>(bit_length >> (8 * i));
  }
  uint64_t saved_total = total_bytes_;
  Update(ByteView(pad, pad_len));
  total_bytes_ = saved_total;

  Digest d;
  d.set_size(kDigestSize);
  for (int i = 0; i < 8; ++i) {
    StoreBigEndian32(d.mutable_data() + 4 * i, h_[i]);
  }
  return d;
}

void Sha256Hasher::ProcessBlock(const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = LoadBigEndian32(block + 4 * i);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

}  // namespace provdb::crypto
