#include "crypto/hmac.h"

#include <cstring>

namespace provdb::crypto {

Digest HmacCompute(HashAlgorithm alg, ByteView key, ByteView message) {
  // All supported algorithms use a 64-byte block.
  constexpr size_t kBlockSize = 64;

  // Keys longer than a block are hashed first; shorter keys zero-padded.
  uint8_t key_block[kBlockSize];
  std::memset(key_block, 0, kBlockSize);
  if (key.size() > kBlockSize) {
    Digest kd = HashBytes(alg, key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else if (!key.empty()) {
    // Empty keys are legal (RFC 2104 test vectors use them) but carry a
    // null data(); the zeroed block already is the padded empty key.
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[kBlockSize];
  uint8_t opad[kBlockSize];
  for (size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5C;
  }

  auto hasher = CreateHasher(alg);
  hasher->Update(ByteView(ipad, kBlockSize));
  hasher->Update(message);
  Digest inner = hasher->Finish();

  hasher->Reset();
  hasher->Update(ByteView(opad, kBlockSize));
  hasher->Update(inner.view());
  return hasher->Finish();
}

}  // namespace provdb::crypto
