#ifndef PROVDB_CRYPTO_SHA1_H_
#define PROVDB_CRYPTO_SHA1_H_

#include <cstdint>

#include "crypto/hash.h"

namespace provdb::crypto {

/// SHA-1 (FIPS PUB 180-1). 20-byte digests. This is the algorithm the
/// paper's evaluation uses ("SHA", java.security.MessageDigest, §5.1).
///
/// Note: SHA-1 collisions are practical today; the library defaults match
/// the paper for reproduction, and SHA-256 is a drop-in replacement via
/// HashAlgorithm::kSha256 everywhere a hash algorithm is configurable.
class Sha1Hasher final : public Hasher {
 public:
  static constexpr size_t kDigestSize = 20;
  static constexpr size_t kBlockSize = 64;

  Sha1Hasher() { Reset(); }

  void Reset() override;
  void Update(ByteView data) override;
  Digest Finish() override;

  size_t digest_size() const override { return kDigestSize; }
  HashAlgorithm algorithm() const override { return HashAlgorithm::kSha1; }

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint64_t total_bytes_;
  uint8_t buffer_[kBlockSize];
  size_t buffered_;
};

}  // namespace provdb::crypto

#endif  // PROVDB_CRYPTO_SHA1_H_
