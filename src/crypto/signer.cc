#include "crypto/signer.h"

#include <string>

#include "crypto/hmac.h"

namespace provdb::crypto {

Result<RsaSigner> RsaSigner::Create(const RsaPrivateKey& key,
                                    HashAlgorithm alg) {
  PROVDB_ASSIGN_OR_RETURN(RsaSigningContext ctx,
                          RsaSigningContext::Create(key));
  return RsaSigner(std::move(ctx), key.PublicKey(), alg);
}

Result<Bytes> RsaSigner::Sign(ByteView message) const {
  Digest d = HashBytes(alg_, message);
  return ctx_.SignDigest(alg_, d);
}

size_t RsaSigner::signature_size() const {
  return public_key_.ModulusBytes();
}

std::string RsaSigner::scheme_name() const {
  return "RSA-" + std::to_string(public_key_.n.BitLength()) + "/" +
         std::string(HashAlgorithmName(alg_));
}

RsaSignatureVerifier::RsaSignatureVerifier(RsaPublicKey key,
                                           HashAlgorithm alg)
    : key_(std::move(key)), alg_(alg) {
  Result<MontgomeryContext> ctx = MontgomeryContext::Create(key_.n);
  if (ctx.ok()) {
    n_ctx_.emplace(std::move(ctx.value()));
  }
}

Status RsaSignatureVerifier::Verify(ByteView message,
                                    ByteView signature) const {
  Digest d = HashBytes(alg_, message);
  return RsaVerifyDigest(key_, alg_, d, signature,
                         n_ctx_.has_value() ? &*n_ctx_ : nullptr);
}

Result<Bytes> HmacSigner::Sign(ByteView message) const {
  return HmacCompute(alg_, key_, message).ToBytes();
}

std::string HmacSigner::scheme_name() const {
  return "HMAC/" + std::string(HashAlgorithmName(alg_));
}

Status HmacSigner::Verify(ByteView message, ByteView signature) const {
  Digest expected = HmacCompute(alg_, key_, message);
  if (!ConstantTimeEqual(expected.view(), signature)) {
    return Status::VerificationFailed("HMAC mismatch");
  }
  return Status::OK();
}

}  // namespace provdb::crypto
