#ifndef PROVDB_CRYPTO_HMAC_H_
#define PROVDB_CRYPTO_HMAC_H_

#include "common/bytes.h"
#include "crypto/digest.h"
#include "crypto/hash.h"

namespace provdb::crypto {

/// HMAC (RFC 2104) over any supported hash algorithm. Used by the
/// symmetric-key ablation signer (HMAC "signatures" are cheap but lose the
/// paper's non-repudiation property R8 — see bench_crypto_micro).
Digest HmacCompute(HashAlgorithm alg, ByteView key, ByteView message);

}  // namespace provdb::crypto

#endif  // PROVDB_CRYPTO_HMAC_H_
