#ifndef PROVDB_CRYPTO_BIGNUM_H_
#define PROVDB_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/bignum_kernels.h"

namespace provdb::crypto {

struct DivModResult;

namespace detail {
/// Limb type of the Montgomery exponentiation engine. The public BigUInt
/// representation stays 32-bit; the ladder repacks operands into the
/// widest limb the compiler can multiply to double width (64-bit via
/// __int128 where available), which more than halves the inner-loop
/// work. Results are identical either way — only the internal radix
/// changes.
#if defined(__SIZEOF_INT128__)
using MontLimb = uint64_t;
#else
using MontLimb = uint32_t;
#endif
}  // namespace detail

/// Arbitrary-precision unsigned integer. Backing for the from-scratch RSA
/// implementation (the paper's checksum signatures use 1024-bit RSA, §5.1).
///
/// Representation: little-endian vector of 32-bit limbs, normalized (no
/// trailing zero limbs; zero is the empty vector). Multiplication and
/// modular exponentiation route through runtime-selected kernels
/// (bignum_kernels.h, docs/CRYPTO.md): schoolbook or Karatsuba multiply,
/// binary or fixed-window Montgomery ladders for odd moduli. Every
/// kernel computes the same function — selection is a speed choice only.
class BigUInt {
 public:
  /// Zero.
  BigUInt() = default;

  /// From a machine word.
  explicit BigUInt(uint64_t v);

  /// Parses a big-endian byte string (as found in signatures and keys).
  static BigUInt FromBytesBigEndian(ByteView bytes);

  /// Parses hex (no 0x prefix, case-insensitive).
  static Result<BigUInt> FromHexString(std::string_view hex);

  /// Parses decimal.
  static Result<BigUInt> FromDecimalString(std::string_view dec);

  /// Minimal-length big-endian bytes ("0" encodes as one zero byte).
  Bytes ToBytesBigEndian() const;

  /// Big-endian bytes left-padded with zeros to exactly `width` bytes.
  /// Fails if the value does not fit.
  Result<Bytes> ToBytesBigEndianPadded(size_t width) const;

  std::string ToHexString() const;
  std::string ToDecimalString() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }

  /// Number of significant bits (0 for zero).
  size_t BitLength() const;

  /// Bit `i` (LSB = 0); bits beyond BitLength() read as 0.
  bool GetBit(size_t i) const;

  /// Value of the low 64 bits.
  uint64_t ToUint64() const;

  // -- Comparison ------------------------------------------------------
  static int Compare(const BigUInt& a, const BigUInt& b);
  bool operator==(const BigUInt& o) const { return Compare(*this, o) == 0; }
  bool operator!=(const BigUInt& o) const { return Compare(*this, o) != 0; }
  bool operator<(const BigUInt& o) const { return Compare(*this, o) < 0; }
  bool operator<=(const BigUInt& o) const { return Compare(*this, o) <= 0; }
  bool operator>(const BigUInt& o) const { return Compare(*this, o) > 0; }
  bool operator>=(const BigUInt& o) const { return Compare(*this, o) >= 0; }

  // -- Arithmetic ------------------------------------------------------
  static BigUInt Add(const BigUInt& a, const BigUInt& b);

  /// Requires a >= b. The precondition is enforced in every build type:
  /// violating it aborts the process rather than silently wrapping. A
  /// wrapped difference inside RSA-CRT or the extended Euclid would
  /// produce a structurally valid but cryptographically wrong value — a
  /// signature that fails verification at best, a key-dependent
  /// miscomputation at worst — so there is no safe "release" behavior to
  /// fall back to. All in-tree call sites either compare first or
  /// subtract a value bounded by construction (see the audit notes at
  /// each site in bignum.cc / rsa.cc).
  static BigUInt Sub(const BigUInt& a, const BigUInt& b);

  /// Dispatches to the process-selected multiply kernel
  /// (SelectedBigNumKernels, docs/CRYPTO.md). All kernels produce
  /// identical results.
  static BigUInt Mul(const BigUInt& a, const BigUInt& b);

  /// Mul under an explicit kernel — cross-check tests and benchmarks
  /// compare kernels in one process without touching the global selection.
  static BigUInt MulWithKernel(const BigUInt& a, const BigUInt& b,
                               MulKernel kernel);

  /// Quotient and remainder; `divisor` must be non-zero.
  static Result<DivModResult> DivMod(const BigUInt& dividend,
                                     const BigUInt& divisor);

  /// a mod m; `m` must be non-zero.
  static Result<BigUInt> Mod(const BigUInt& a, const BigUInt& m);

  BigUInt operator+(const BigUInt& o) const { return Add(*this, o); }
  BigUInt operator-(const BigUInt& o) const { return Sub(*this, o); }
  BigUInt operator*(const BigUInt& o) const { return Mul(*this, o); }

  /// Left shift by `bits`.
  BigUInt ShiftLeft(size_t bits) const;

  /// Logical right shift by `bits`.
  BigUInt ShiftRight(size_t bits) const;

  // -- Number theory ---------------------------------------------------

  /// (base ^ exp) mod m. Requires m != 0. Uses Montgomery multiplication
  /// when m is odd (the RSA case), generic square-and-multiply otherwise.
  static Result<BigUInt> ModExp(const BigUInt& base, const BigUInt& exp,
                                const BigUInt& m);

  /// Greatest common divisor.
  static BigUInt Gcd(BigUInt a, BigUInt b);

  /// Multiplicative inverse of a modulo m; fails when gcd(a, m) != 1.
  static Result<BigUInt> ModInverse(const BigUInt& a, const BigUInt& m);

 private:
  friend class MontgomeryContext;

  void Normalize();

  std::vector<uint32_t> limbs_;
};

/// Quotient and remainder of an integer division.
struct DivModResult {
  BigUInt quotient;
  BigUInt remainder;
};

/// Precomputed context for repeated modular multiplication modulo a fixed
/// odd modulus (Montgomery REDC form). Exposed so RSA-CRT can reuse the
/// per-prime contexts across many signatures.
class MontgomeryContext {
 public:
  /// `modulus` must be odd and > 1.
  static Result<MontgomeryContext> Create(const BigUInt& modulus);

  const BigUInt& modulus() const { return modulus_; }

  /// Converts into Montgomery form: a * R mod m.
  BigUInt ToMontgomery(const BigUInt& a) const;

  /// Converts out of Montgomery form: a * R^-1 mod m.
  BigUInt FromMontgomery(const BigUInt& a) const;

  /// Montgomery product: a * b * R^-1 mod m (operands in Montgomery form).
  BigUInt MulReduce(const BigUInt& a, const BigUInt& b) const;

  /// (base ^ exp) mod m, operands in ordinary (non-Montgomery) form.
  /// Dispatches to the process-selected ladder kernel
  /// (SelectedBigNumKernels); all ladders produce identical results.
  BigUInt ModExp(const BigUInt& base, const BigUInt& exp) const;

  /// ModExp under an explicit ladder kernel — for kernel cross-check
  /// tests and benchmark A/B runs.
  BigUInt ModExpWithKernel(const BigUInt& base, const BigUInt& exp,
                           ModExpKernel kernel) const;

 private:
  MontgomeryContext() = default;

  /// Allocation-free CIOS Montgomery product on flat 32-bit limb arrays
  /// (the MulReduce/ToMontgomery/FromMontgomery radix): out = a * b *
  /// R^-1 mod m. `a`, `b`, `out` are num_limbs_ wide; `scratch` is
  /// num_limbs_ + 2 wide. `out` may alias `a` and/or `b` (inputs are
  /// consumed before `out` is written); `scratch` must not alias
  /// anything.
  void MontMulInto(const uint32_t* a, const uint32_t* b, uint32_t* out,
                   uint32_t* scratch) const;

  /// Same contract on the engine radix (detail::MontLimb, mont_limbs_
  /// wide, scratch mont_limbs_ + 2): the ladder hot path — no heap, no
  /// BigUInt.
  void MontMulIntoL(const detail::MontLimb* a, const detail::MontLimb* b,
                    detail::MontLimb* out, detail::MontLimb* scratch) const;

  BigUInt modulus_;
  BigUInt r_mod_m_;   // R mod m, R = 2^(32 * limbs)
  BigUInt r2_mod_m_;  // R^2 mod m
  uint32_t n_prime_ = 0;  // -m^-1 mod 2^32
  size_t num_limbs_ = 0;

  // Engine-radix mirror of the modulus (docs/CRYPTO.md). R_L =
  // 2^(bits(MontLimb) * mont_limbs_) differs from R when the radix
  // differs; that is invisible outside ModExp, which converts on entry
  // and exit.
  std::vector<detail::MontLimb> mont_m_;
  std::vector<detail::MontLimb> mont_r_;   // R_L mod m
  std::vector<detail::MontLimb> mont_r2_;  // R_L^2 mod m
  detail::MontLimb mont_n_prime_ = 0;      // -m^-1 mod 2^bits(MontLimb)
  size_t mont_limbs_ = 0;
};

}  // namespace provdb::crypto

#endif  // PROVDB_CRYPTO_BIGNUM_H_
