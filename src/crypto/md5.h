#ifndef PROVDB_CRYPTO_MD5_H_
#define PROVDB_CRYPTO_MD5_H_

#include <cstdint>

#include "crypto/hash.h"

namespace provdb::crypto {

/// MD5 (RFC 1321). 16-byte digests. Named by the paper (§2.3) as one of
/// the two candidate hash functions; provided for ablation benchmarks.
/// MD5 is cryptographically broken — do not use it outside reproductions.
class Md5Hasher final : public Hasher {
 public:
  static constexpr size_t kDigestSize = 16;
  static constexpr size_t kBlockSize = 64;

  Md5Hasher() { Reset(); }

  void Reset() override;
  void Update(ByteView data) override;
  Digest Finish() override;

  size_t digest_size() const override { return kDigestSize; }
  HashAlgorithm algorithm() const override { return HashAlgorithm::kMd5; }

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[4];
  uint64_t total_bytes_;
  uint8_t buffer_[kBlockSize];
  size_t buffered_;
};

}  // namespace provdb::crypto

#endif  // PROVDB_CRYPTO_MD5_H_
