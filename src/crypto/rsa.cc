#include "crypto/rsa.h"

#include <array>

#include "common/varint.h"

namespace provdb::crypto {

namespace {

// Small primes for fast trial division before Miller-Rabin.
constexpr std::array<uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// One-byte stand-in for the PKCS#1 DigestInfo algorithm identifier.
uint8_t AlgorithmTag(HashAlgorithm alg) {
  switch (alg) {
    case HashAlgorithm::kSha1:
      return 0x01;
    case HashAlgorithm::kSha256:
      return 0x02;
    case HashAlgorithm::kMd5:
      return 0x03;
  }
  return 0xFF;
}

// Builds the padded message representative EM for signing:
//   0x00 || 0x01 || 0xFF..FF || 0x00 || tag || digest
Result<Bytes> EncodeMessage(size_t modulus_bytes, HashAlgorithm alg,
                            const Digest& digest) {
  const size_t payload = digest.size() + 1;  // tag + digest
  if (modulus_bytes < payload + 11) {
    return Status::InvalidArgument("RSA modulus too small for digest");
  }
  Bytes em;
  em.reserve(modulus_bytes);
  em.push_back(0x00);
  em.push_back(0x01);
  size_t pad_len = modulus_bytes - payload - 3;
  em.insert(em.end(), pad_len, 0xFF);
  em.push_back(0x00);
  em.push_back(AlgorithmTag(alg));
  AppendBytes(&em, digest.view());
  return em;
}

// Miller-Rabin witness loop for n with n-1 = d * 2^r.
bool MillerRabinWitness(const BigUInt& n, const BigUInt& n_minus_1,
                        const BigUInt& d, size_t r, const BigUInt& a,
                        const MontgomeryContext& ctx) {
  BigUInt x = ctx.ModExp(a, d);
  if (x == BigUInt(1) || x == n_minus_1) {
    return true;  // passes this witness
  }
  for (size_t i = 1; i < r; ++i) {
    x = BigUInt::Mod(BigUInt::Mul(x, x), n).value();
    if (x == n_minus_1) {
      return true;
    }
    if (x == BigUInt(1)) {
      return false;
    }
  }
  return false;
}

}  // namespace

bool IsProbablePrime(const BigUInt& n, Rng* rng, int rounds) {
  if (n < BigUInt(2)) {
    return false;
  }
  // Trial division (also handles all small primes exactly).
  for (uint32_t p : kSmallPrimes) {
    BigUInt bp(p);
    if (n == bp) {
      return true;
    }
    if (BigUInt::Mod(n, bp).value().IsZero()) {
      return false;
    }
  }
  if (!n.IsOdd()) {
    return false;
  }

  BigUInt n_minus_1 = BigUInt::Sub(n, BigUInt(1));
  // n - 1 = d * 2^r with d odd.
  size_t r = 0;
  BigUInt d = n_minus_1;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++r;
  }

  auto ctx_or = MontgomeryContext::Create(n);
  if (!ctx_or.ok()) {
    return false;
  }
  const MontgomeryContext& ctx = ctx_or.value();

  // Deterministic small bases catch most composites cheaply.
  for (uint32_t base : {2u, 3u, 5u, 7u, 11u, 13u, 17u, 19u, 23u, 29u, 31u, 37u}) {
    BigUInt a(base);
    if (BigUInt::Compare(a, n_minus_1) >= 0) {
      continue;
    }
    if (!MillerRabinWitness(n, n_minus_1, d, r, a, ctx)) {
      return false;
    }
  }
  // Random witnesses in [2, n-2].
  const size_t bytes = (n.BitLength() + 7) / 8;
  for (int round = 0; round < rounds; ++round) {
    Bytes raw;
    rng->NextBytes(&raw, bytes);
    BigUInt a = BigUInt::Mod(BigUInt::FromBytesBigEndian(raw),
                             BigUInt::Sub(n, BigUInt(3)))
                    .value();
    a = BigUInt::Add(a, BigUInt(2));  // a in [2, n-2]
    if (!MillerRabinWitness(n, n_minus_1, d, r, a, ctx)) {
      return false;
    }
  }
  return true;
}

Result<BigUInt> GeneratePrime(size_t bits, Rng* rng) {
  if (bits < 16) {
    return Status::InvalidArgument("prime size too small");
  }
  const size_t bytes = (bits + 7) / 8;
  for (int attempt = 0; attempt < 100000; ++attempt) {
    Bytes raw;
    rng->NextBytes(&raw, bytes);
    // Clear excess high bits, then force the top two bits (so p*q reaches
    // the full modulus width) and the low bit (odd).
    size_t excess = bytes * 8 - bits;
    raw[0] &= static_cast<uint8_t>(0xFF >> excess);
    raw[0] |= static_cast<uint8_t>(0xC0 >> excess);
    raw[bytes - 1] |= 0x01;
    BigUInt candidate = BigUInt::FromBytesBigEndian(raw);
    if (IsProbablePrime(candidate, rng, 20)) {
      return candidate;
    }
  }
  return Status::Internal("prime generation exhausted attempts");
}

Result<RsaKeyPair> GenerateRsaKeyPair(size_t modulus_bits, Rng* rng) {
  if (modulus_bits < 128 || modulus_bits % 2 != 0) {
    return Status::InvalidArgument(
        "modulus_bits must be even and >= 128");
  }
  const BigUInt e(65537);
  const size_t prime_bits = modulus_bits / 2;

  for (int attempt = 0; attempt < 100; ++attempt) {
    PROVDB_ASSIGN_OR_RETURN(BigUInt p, GeneratePrime(prime_bits, rng));
    PROVDB_ASSIGN_OR_RETURN(BigUInt q, GeneratePrime(prime_bits, rng));
    if (p == q) {
      continue;
    }
    // Keep p > q so qinv = q^-1 mod p is well-formed for CRT.
    if (p < q) {
      std::swap(p, q);
    }
    BigUInt n = BigUInt::Mul(p, q);
    if (n.BitLength() != modulus_bits) {
      continue;
    }
    BigUInt p1 = BigUInt::Sub(p, BigUInt(1));
    BigUInt q1 = BigUInt::Sub(q, BigUInt(1));
    BigUInt phi = BigUInt::Mul(p1, q1);
    if (BigUInt::Gcd(e, phi) != BigUInt(1)) {
      continue;
    }
    PROVDB_ASSIGN_OR_RETURN(BigUInt d, BigUInt::ModInverse(e, phi));
    PROVDB_ASSIGN_OR_RETURN(BigUInt dp, BigUInt::Mod(d, p1));
    PROVDB_ASSIGN_OR_RETURN(BigUInt dq, BigUInt::Mod(d, q1));
    PROVDB_ASSIGN_OR_RETURN(BigUInt qinv, BigUInt::ModInverse(q, p));

    RsaPrivateKey priv{n, e, d, p, q, dp, dq, qinv};
    return RsaKeyPair{priv.PublicKey(), std::move(priv)};
  }
  return Status::Internal("RSA key generation exhausted attempts");
}

Bytes RsaPublicKey::Serialize() const {
  Bytes out;
  AppendLengthPrefixed(&out, n.ToBytesBigEndian());
  AppendLengthPrefixed(&out, e.ToBytesBigEndian());
  return out;
}

Result<RsaPublicKey> RsaPublicKey::Deserialize(ByteView data) {
  VarintReader reader(data);
  PROVDB_ASSIGN_OR_RETURN(Bytes n_bytes, reader.ReadLengthPrefixed());
  PROVDB_ASSIGN_OR_RETURN(Bytes e_bytes, reader.ReadLengthPrefixed());
  return RsaPublicKey{BigUInt::FromBytesBigEndian(n_bytes),
                      BigUInt::FromBytesBigEndian(e_bytes)};
}

Result<RsaSigningContext> RsaSigningContext::Create(const RsaPrivateKey& key) {
  PROVDB_ASSIGN_OR_RETURN(MontgomeryContext p_ctx,
                          MontgomeryContext::Create(key.p));
  PROVDB_ASSIGN_OR_RETURN(MontgomeryContext q_ctx,
                          MontgomeryContext::Create(key.q));
  return RsaSigningContext(key, std::move(p_ctx), std::move(q_ctx));
}

Result<Bytes> RsaSigningContext::SignDigest(HashAlgorithm alg,
                                            const Digest& digest) const {
  const size_t k = key_.ModulusBytes();
  PROVDB_ASSIGN_OR_RETURN(Bytes em, EncodeMessage(k, alg, digest));
  BigUInt m = BigUInt::FromBytesBigEndian(em);

  // CRT: s = s2 + q * ((qinv * (s1 - s2)) mod p)
  BigUInt s1 = p_ctx_.ModExp(m, key_.dp);
  BigUInt s2 = q_ctx_.ModExp(m, key_.dq);
  BigUInt diff;
  if (BigUInt::Compare(s1, s2) >= 0) {
    diff = BigUInt::Sub(s1, s2);
  } else {
    // (s1 - s2) mod p: add enough multiples of p to make it non-negative.
    PROVDB_ASSIGN_OR_RETURN(BigUInt s2_mod_p, BigUInt::Mod(s2, key_.p));
    BigUInt lifted = BigUInt::Add(s1, key_.p);
    if (BigUInt::Compare(lifted, s2_mod_p) < 0) {
      lifted = BigUInt::Add(lifted, key_.p);
    }
    diff = BigUInt::Sub(lifted, s2_mod_p);
  }
  PROVDB_ASSIGN_OR_RETURN(BigUInt h,
                          BigUInt::Mod(BigUInt::Mul(key_.qinv, diff), key_.p));
  BigUInt s = BigUInt::Add(s2, BigUInt::Mul(key_.q, h));

  return s.ToBytesBigEndianPadded(k);
}

Result<Bytes> RsaSignDigest(const RsaPrivateKey& key, HashAlgorithm alg,
                            const Digest& digest) {
  PROVDB_ASSIGN_OR_RETURN(RsaSigningContext ctx, RsaSigningContext::Create(key));
  return ctx.SignDigest(alg, digest);
}

Status RsaVerifyDigest(const RsaPublicKey& key, HashAlgorithm alg,
                       const Digest& digest, ByteView signature,
                       const MontgomeryContext* n_ctx) {
  const size_t k = key.ModulusBytes();
  if (signature.size() != k) {
    return Status::VerificationFailed("signature length mismatch");
  }
  BigUInt s = BigUInt::FromBytesBigEndian(signature);
  if (BigUInt::Compare(s, key.n) >= 0) {
    return Status::VerificationFailed("signature out of range");
  }
  Result<BigUInt> m_or = n_ctx != nullptr
                             ? Result<BigUInt>(n_ctx->ModExp(s, key.e))
                             : BigUInt::ModExp(s, key.e, key.n);
  if (!m_or.ok()) {
    return Status::VerificationFailed("RSA exponentiation failed");
  }
  auto em_or = m_or.value().ToBytesBigEndianPadded(k);
  if (!em_or.ok()) {
    return Status::VerificationFailed("recovered message malformed");
  }
  auto expected_or = EncodeMessage(k, alg, digest);
  if (!expected_or.ok()) {
    return Status::VerificationFailed(expected_or.status().message());
  }
  if (!ConstantTimeEqual(em_or.value(), expected_or.value())) {
    return Status::VerificationFailed("signature does not match digest");
  }
  return Status::OK();
}

}  // namespace provdb::crypto
