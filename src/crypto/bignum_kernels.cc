#include "crypto/bignum_kernels.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "observability/metrics.h"

namespace provdb::crypto {

namespace {

// ---------------------------------------------------------------------
// Selection

// Packed selection: bit 32 = "set", bits [8,16) = mul kernel, bits [0,8)
// = modexp kernel. One word so readers never see a half-updated pair.
constexpr uint64_t kSelectedFlag = 1ull << 32;

uint64_t Pack(const BigNumKernelSet& set) {
  return kSelectedFlag |
         (static_cast<uint64_t>(static_cast<uint32_t>(set.mul)) << 8) |
         static_cast<uint64_t>(static_cast<uint32_t>(set.mod_exp));
}

BigNumKernelSet Unpack(uint64_t packed) {
  BigNumKernelSet set;
  set.mul = static_cast<MulKernel>(static_cast<int32_t>((packed >> 8) & 0xFF));
  set.mod_exp = static_cast<ModExpKernel>(static_cast<int32_t>(packed & 0xFF));
  return set;
}

std::atomic<uint64_t> g_selected{0};

// The selection gauges make "which kernel ran" part of every benchmark's
// metrics footer: id values match the enum values documented in
// docs/OBSERVABILITY.md.
void PublishKernelGauges(const BigNumKernelSet& set) {
  auto& metrics = observability::GlobalMetrics();
  metrics.gauge("crypto.bignum.kernel")
      ->Set(static_cast<int64_t>(set.mod_exp));
  metrics.gauge("crypto.bignum.kernel.mul")
      ->Set(static_cast<int64_t>(set.mul));
}

// ---------------------------------------------------------------------
// Multiply kernels. Both write the full an+bn limbs of `out` and assume
// it is zero-initialized on entry (MulLimbs clears it once up front;
// recursion writes into disjoint, still-zero regions).

void SchoolbookMulInto(const uint32_t* a, size_t an, const uint32_t* b,
                       size_t bn, uint32_t* out) {
  for (size_t i = 0; i < an; ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a[i];
    for (size_t j = 0; j < bn; ++j) {
      uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    out[i + bn] = static_cast<uint32_t>(out[i + bn] + carry);
  }
}

// acc[0..acc_len) += src[0..src_len); the caller guarantees the sum fits
// (every use adds a partial product into a wider accumulator).
void AddAt(uint32_t* acc, size_t acc_len, const uint32_t* src,
           size_t src_len) {
  assert(src_len <= acc_len);
  uint64_t carry = 0;
  size_t i = 0;
  for (; i < src_len; ++i) {
    uint64_t cur = static_cast<uint64_t>(acc[i]) + src[i] + carry;
    acc[i] = static_cast<uint32_t>(cur);
    carry = cur >> 32;
  }
  for (; carry != 0 && i < acc_len; ++i) {
    uint64_t cur = static_cast<uint64_t>(acc[i]) + carry;
    acc[i] = static_cast<uint32_t>(cur);
    carry = cur >> 32;
  }
  assert(carry == 0);
}

// a[0..an) -= b[0..bn); the caller guarantees a >= b (Karatsuba's middle
// term (a0+a1)(b0+b1) always dominates z0 and z2).
void SubAt(uint32_t* a, size_t an, const uint32_t* b, size_t bn) {
  assert(bn <= an);
  int64_t borrow = 0;
  for (size_t i = 0; i < an; ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow;
    if (i < bn) diff -= b[i];
    if (diff < 0) {
      diff += static_cast<int64_t>(1ull << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<uint32_t>(diff);
  }
  assert(borrow == 0);
}

// out[0..max(an,bn)+1) = a + b.
void AddLimbs(const uint32_t* a, size_t an, const uint32_t* b, size_t bn,
              uint32_t* out) {
  const size_t n = std::max(an, bn);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t cur = carry;
    if (i < an) cur += a[i];
    if (i < bn) cur += b[i];
    out[i] = static_cast<uint32_t>(cur);
    carry = cur >> 32;
  }
  out[n] = static_cast<uint32_t>(carry);
}

size_t TrimmedLen(const uint32_t* v, size_t len) {
  while (len > 0 && v[len - 1] == 0) --len;
  return len;
}

// Karatsuba with unbalanced-operand block decomposition. Preconditions:
// an >= bn, out zeroed with an+bn limbs, out does not alias a or b.
// Per-level temporaries are heap vectors — only keygen/verify-sized
// operands (>= kKaratsubaThresholdLimbs) ever reach this, never the
// CIOS signing core, which is allocation-free (bignum.cc).
void KaratsubaMulInto(const uint32_t* a, size_t an, const uint32_t* b,
                      size_t bn, uint32_t* out) {
  assert(an >= bn);
  if (bn < kKaratsubaThresholdLimbs) {
    SchoolbookMulInto(a, an, b, bn, out);
    return;
  }
  const size_t h = (an + 1) / 2;  // low-half width of a

  if (bn <= h) {
    // b spans only a's low half: a*b = a0*b + (a1*b << 32h).
    KaratsubaMulInto(a, h, b, bn, out);
    std::vector<uint32_t> hi(an - h + bn, 0);
    if (an - h >= bn) {
      KaratsubaMulInto(a + h, an - h, b, bn, hi.data());
    } else {
      KaratsubaMulInto(b, bn, a + h, an - h, hi.data());
    }
    AddAt(out + h, an + bn - h, hi.data(), hi.size());
    return;
  }

  // Balanced split at h: a = a1·B^h + a0, b = b1·B^h + b0 with
  // |a1| = an-h <= h and |b1| = bn-h <= h.
  //   z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)(b0+b1) - z0 - z2
  //   a*b = z2·B^2h + z1·B^h + z0
  // z0 and z2 land in disjoint halves of `out`, so only z1 needs a
  // temporary.
  KaratsubaMulInto(a, h, b, h, out);                          // z0 -> out[0..2h)
  KaratsubaMulInto(a + h, an - h, b + h, bn - h, out + 2 * h);  // z2

  std::vector<uint32_t> asum(h + 1), bsum(h + 1);
  AddLimbs(a, h, a + h, an - h, asum.data());
  AddLimbs(b, h, b + h, bn - h, bsum.data());

  std::vector<uint32_t> z1(2 * (h + 1), 0);
  KaratsubaMulInto(asum.data(), h + 1, bsum.data(), h + 1, z1.data());
  SubAt(z1.data(), z1.size(), out, 2 * h);                    // -= z0
  SubAt(z1.data(), z1.size(), out + 2 * h, an + bn - 2 * h);  // -= z2

  // z1 < B^(an+bn-h) by construction; trim so the add fits the slots
  // that remain above offset h.
  AddAt(out + h, an + bn - h, z1.data(), TrimmedLen(z1.data(), z1.size()));
}

}  // namespace

std::string_view MulKernelName(MulKernel kernel) {
  switch (kernel) {
    case MulKernel::kSchoolbook:
      return "schoolbook";
    case MulKernel::kKaratsuba:
      return "karatsuba";
  }
  return "unknown";
}

std::string_view ModExpKernelName(ModExpKernel kernel) {
  switch (kernel) {
    case ModExpKernel::kBinary:
      return "binary";
    case ModExpKernel::kWindow4:
      return "window4";
    case ModExpKernel::kWindow5:
      return "window5";
  }
  return "unknown";
}

Result<BigNumKernelSet> ParseBigNumKernelSpec(std::string_view spec) {
  BigNumKernelSet set;
  bool any = false;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find_first_of(",+ \t", pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view token = spec.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    any = true;
    if (token == "schoolbook") {
      set.mul = MulKernel::kSchoolbook;
    } else if (token == "karatsuba") {
      set.mul = MulKernel::kKaratsuba;
    } else if (token == "binary") {
      set.mod_exp = ModExpKernel::kBinary;
    } else if (token == "window4") {
      set.mod_exp = ModExpKernel::kWindow4;
    } else if (token == "window5") {
      set.mod_exp = ModExpKernel::kWindow5;
    } else if (token == "default") {
      // Explicit "defaults, please" — keeps scripts self-documenting.
    } else {
      return Status::InvalidArgument("unknown bignum kernel token: " +
                                     std::string(token));
    }
  }
  if (!any) {
    return Status::InvalidArgument("empty bignum kernel spec");
  }
  return set;
}

BigNumKernelSet SelectedBigNumKernels() {
  uint64_t packed = g_selected.load(std::memory_order_acquire);
  if (packed == 0) {
    BigNumKernelSet set;
    const char* env = std::getenv("PROVDB_BIGNUM_KERNEL");
    if (env != nullptr && env[0] != '\0') {
      Result<BigNumKernelSet> parsed = ParseBigNumKernelSpec(env);
      if (!parsed.ok()) {
        // Fail fast: a CI tier that asked for a specific kernel must not
        // silently measure (or green-light) the default one instead.
        std::fprintf(stderr, "invalid PROVDB_BIGNUM_KERNEL=\"%s\": %s\n", env,
                     parsed.status().message().c_str());
        std::abort();
      }
      set = parsed.value();
    }
    // First selection wins a race; losers adopt the published value.
    uint64_t expected = 0;
    if (g_selected.compare_exchange_strong(expected, Pack(set),
                                           std::memory_order_acq_rel)) {
      PublishKernelGauges(set);
      packed = Pack(set);
    } else {
      packed = expected;
    }
  }
  return Unpack(packed);
}

void ForceBigNumKernels(const BigNumKernelSet& set) {
  g_selected.store(Pack(set), std::memory_order_release);
  PublishKernelGauges(set);
}

void MulLimbs(const uint32_t* a, size_t an, const uint32_t* b, size_t bn,
              uint32_t* out, MulKernel kernel) {
  std::fill(out, out + an + bn, 0u);
  if (an == 0 || bn == 0) return;
  if (kernel == MulKernel::kKaratsuba &&
      std::min(an, bn) >= kKaratsubaThresholdLimbs) {
    if (an >= bn) {
      KaratsubaMulInto(a, an, b, bn, out);
    } else {
      KaratsubaMulInto(b, bn, a, an, out);
    }
  } else {
    SchoolbookMulInto(a, an, b, bn, out);
  }
}

}  // namespace provdb::crypto
