#ifndef PROVDB_CRYPTO_HASH_H_
#define PROVDB_CRYPTO_HASH_H_

#include <memory>
#include <string_view>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace provdb::crypto {

/// Supported cryptographic hash algorithms. The paper uses SHA-1 ("SHA",
/// 20-byte digests, §5.1); SHA-256 and MD5 are provided for ablations and
/// because the paper names both SHA-1 and MD5 as candidates (§2.3).
enum class HashAlgorithm {
  kSha1,
  kSha256,
  kMd5,
};

/// Returns "SHA-1" / "SHA-256" / "MD5".
std::string_view HashAlgorithmName(HashAlgorithm alg);

/// Digest length in bytes for `alg`.
size_t HashDigestSize(HashAlgorithm alg);

/// Streaming hash interface. Implementations are reusable: after Finish(),
/// call Reset() to begin a new message.
class Hasher {
 public:
  virtual ~Hasher() = default;

  /// Abandons any buffered input and starts a fresh message.
  virtual void Reset() = 0;

  /// Absorbs `data` into the running hash.
  virtual void Update(ByteView data) = 0;

  /// Completes the hash and returns the digest. The hasher must be Reset()
  /// before further Update() calls.
  virtual Digest Finish() = 0;

  virtual size_t digest_size() const = 0;
  virtual HashAlgorithm algorithm() const = 0;

  /// Convenience: Reset + Update + Finish in one call.
  Digest Hash(ByteView data) {
    Reset();
    Update(data);
    return Finish();
  }
};

/// Creates a hasher for `alg`.
std::unique_ptr<Hasher> CreateHasher(HashAlgorithm alg);

/// One-shot hash of `data` under `alg`.
Digest HashBytes(HashAlgorithm alg, ByteView data);

}  // namespace provdb::crypto

#endif  // PROVDB_CRYPTO_HASH_H_
