#include "crypto/sha1.h"

#include <cstring>

namespace provdb::crypto {

namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline uint32_t LoadBigEndian32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}

inline void StoreBigEndian32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

}  // namespace

void Sha1Hasher::Reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1Hasher::Update(ByteView data) {
  // Empty views carry data() == nullptr, which memcpy below must not
  // see even when take == 0.
  if (data.empty()) return;
  total_bytes_ += data.size();
  size_t pos = 0;
  if (buffered_ > 0) {
    size_t need = kBlockSize - buffered_;
    size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    pos += take;
    if (buffered_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (pos + kBlockSize <= data.size()) {
    ProcessBlock(data.data() + pos);
    pos += kBlockSize;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_, data.data() + pos, data.size() - pos);
    buffered_ = data.size() - pos;
  }
}

Digest Sha1Hasher::Finish() {
  uint64_t bit_length = total_bytes_ * 8;
  uint8_t pad[kBlockSize * 2];
  size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  // Pad to 56 mod 64 (leaving 8 bytes for the length).
  size_t rem = (buffered_ + 1) % kBlockSize;
  size_t zeros = (rem <= 56) ? (56 - rem) : (kBlockSize + 56 - rem);
  std::memset(pad + pad_len, 0, zeros);
  pad_len += zeros;
  for (int i = 7; i >= 0; --i) {
    pad[pad_len++] = static_cast<uint8_t>(bit_length >> (8 * i));
  }
  // Feed padding through the normal path without re-counting its length.
  uint64_t saved_total = total_bytes_;
  Update(ByteView(pad, pad_len));
  total_bytes_ = saved_total;

  Digest d;
  d.set_size(kDigestSize);
  for (int i = 0; i < 5; ++i) {
    StoreBigEndian32(d.mutable_data() + 4 * i, h_[i]);
  }
  return d;
}

void Sha1Hasher::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = LoadBigEndian32(block + 4 * i);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    uint32_t temp = Rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = temp;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

}  // namespace provdb::crypto
