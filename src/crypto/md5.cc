#include "crypto/md5.h"

#include <cstring>

namespace provdb::crypto {

namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline uint32_t LoadLittleEndian32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline void StoreLittleEndian32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

// T[i] = floor(abs(sin(i + 1)) * 2^32), per RFC 1321.
constexpr uint32_t kSineTable[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
};

constexpr int kShifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

}  // namespace

void Md5Hasher::Reset() {
  state_[0] = 0x67452301u;
  state_[1] = 0xefcdab89u;
  state_[2] = 0x98badcfeu;
  state_[3] = 0x10325476u;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Md5Hasher::Update(ByteView data) {
  // Empty views carry data() == nullptr, which memcpy below must not
  // see even when take == 0.
  if (data.empty()) return;
  total_bytes_ += data.size();
  size_t pos = 0;
  if (buffered_ > 0) {
    size_t need = kBlockSize - buffered_;
    size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    pos += take;
    if (buffered_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (pos + kBlockSize <= data.size()) {
    ProcessBlock(data.data() + pos);
    pos += kBlockSize;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_, data.data() + pos, data.size() - pos);
    buffered_ = data.size() - pos;
  }
}

Digest Md5Hasher::Finish() {
  uint64_t bit_length = total_bytes_ * 8;
  uint8_t pad[kBlockSize * 2];
  size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  size_t rem = (buffered_ + 1) % kBlockSize;
  size_t zeros = (rem <= 56) ? (56 - rem) : (kBlockSize + 56 - rem);
  std::memset(pad + pad_len, 0, zeros);
  pad_len += zeros;
  // MD5 appends the bit length little-endian (unlike the SHA family).
  for (int i = 0; i < 8; ++i) {
    pad[pad_len++] = static_cast<uint8_t>(bit_length >> (8 * i));
  }
  uint64_t saved_total = total_bytes_;
  Update(ByteView(pad, pad_len));
  total_bytes_ = saved_total;

  Digest d;
  d.set_size(kDigestSize);
  for (int i = 0; i < 4; ++i) {
    StoreLittleEndian32(d.mutable_data() + 4 * i, state_[i]);
  }
  return d;
}

void Md5Hasher::ProcessBlock(const uint8_t* block) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = LoadLittleEndian32(block + 4 * i);
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    uint32_t temp = d;
    d = c;
    c = b;
    b = b + Rotl(a + f + kSineTable[i] + m[g], kShifts[i]);
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

}  // namespace provdb::crypto
