#include "crypto/hash.h"

#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace provdb::crypto {

std::string_view HashAlgorithmName(HashAlgorithm alg) {
  switch (alg) {
    case HashAlgorithm::kSha1:
      return "SHA-1";
    case HashAlgorithm::kSha256:
      return "SHA-256";
    case HashAlgorithm::kMd5:
      return "MD5";
  }
  return "unknown";
}

size_t HashDigestSize(HashAlgorithm alg) {
  switch (alg) {
    case HashAlgorithm::kSha1:
      return Sha1Hasher::kDigestSize;
    case HashAlgorithm::kSha256:
      return Sha256Hasher::kDigestSize;
    case HashAlgorithm::kMd5:
      return Md5Hasher::kDigestSize;
  }
  return 0;
}

std::unique_ptr<Hasher> CreateHasher(HashAlgorithm alg) {
  switch (alg) {
    case HashAlgorithm::kSha1:
      return std::make_unique<Sha1Hasher>();
    case HashAlgorithm::kSha256:
      return std::make_unique<Sha256Hasher>();
    case HashAlgorithm::kMd5:
      return std::make_unique<Md5Hasher>();
  }
  return nullptr;
}

Digest HashBytes(HashAlgorithm alg, ByteView data) {
  switch (alg) {
    case HashAlgorithm::kSha1: {
      Sha1Hasher h;
      return h.Hash(data);
    }
    case HashAlgorithm::kSha256: {
      Sha256Hasher h;
      return h.Hash(data);
    }
    case HashAlgorithm::kMd5: {
      Md5Hasher h;
      return h.Hash(data);
    }
  }
  return Digest();
}

}  // namespace provdb::crypto
