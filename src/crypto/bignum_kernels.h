#ifndef PROVDB_CRYPTO_BIGNUM_KERNELS_H_
#define PROVDB_CRYPTO_BIGNUM_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/result.h"

namespace provdb::crypto {

/// Runtime-dispatched bignum kernels (docs/CRYPTO.md). Every kernel in a
/// category computes the exact same function — selection trades speed,
/// never results — so RSA signatures stay byte-identical whichever kernel
/// runs. Selection happens once per process (first use), honours the
/// PROVDB_BIGNUM_KERNEL environment override, and is surfaced through the
/// `crypto.bignum.kernel` / `crypto.bignum.kernel.mul` gauges.

/// Full-width multiply kernels (BigUInt::Mul and everything above it).
enum class MulKernel : int32_t {
  kSchoolbook = 0,  // portable O(n^2) limb loop
  kKaratsuba = 1,   // three-way split above kKaratsubaThresholdLimbs
};

/// Montgomery modular-exponentiation ladders (MontgomeryContext::ModExp).
enum class ModExpKernel : int32_t {
  kBinary = 0,   // bit-at-a-time square-and-multiply
  kWindow4 = 1,  // fixed 4-bit windows, constant-time table selection
  kWindow5 = 2,  // fixed 5-bit windows, constant-time table selection
};

/// Operand size (in 32-bit limbs, smaller operand) below which Karatsuba
/// recursion falls back to the schoolbook loop. Tuned on the RSA-2048
/// keygen/verify path; below this the O(n^2) loop's locality wins.
inline constexpr size_t kKaratsubaThresholdLimbs = 24;

/// Exponent bit length below which the windowed ladders degrade to the
/// binary ladder: building the 2^k-entry table costs more multiplies
/// than windowing saves on a short exponent (RSA's e = 65537 is the
/// textbook case). The cutoff depends only on BitLength(exp), which the
/// ladder's operation count reveals anyway — no new leakage.
inline constexpr size_t kWindowedLadderMinExpBits = 128;

/// One kernel per category; the unit of selection and of the
/// PROVDB_BIGNUM_KERNEL spec.
struct BigNumKernelSet {
  MulKernel mul = MulKernel::kKaratsuba;
  ModExpKernel mod_exp = ModExpKernel::kWindow5;

  bool operator==(const BigNumKernelSet& o) const {
    return mul == o.mul && mod_exp == o.mod_exp;
  }
  bool operator!=(const BigNumKernelSet& o) const { return !(*this == o); }
};

/// Stable lowercase names, also the PROVDB_BIGNUM_KERNEL spec tokens.
std::string_view MulKernelName(MulKernel kernel);
std::string_view ModExpKernelName(ModExpKernel kernel);

/// Parses a kernel spec: comma/plus/space-separated tokens from
/// {schoolbook, karatsuba, binary, window4, window5, default}. Tokens
/// override their own category only; within a category the last token
/// wins. Empty or unknown tokens are an error.
Result<BigNumKernelSet> ParseBigNumKernelSpec(std::string_view spec);

/// The process-wide kernel selection. First call reads
/// PROVDB_BIGNUM_KERNEL (an invalid spec aborts — a CI run exercising a
/// kernel must never silently fall back to the default), publishes the
/// selection gauges, and latches the result; later calls are two relaxed
/// atomic loads.
BigNumKernelSet SelectedBigNumKernels();

/// Overrides the process-wide selection (tests and bench A/B runs). Safe
/// at any point because kernels are result-identical; values computed
/// before the switch remain valid.
void ForceBigNumKernels(const BigNumKernelSet& set);

/// Flat-limb multiply: out[0 .. an+bn) = a * b under the chosen kernel.
/// `out` must not alias the inputs; it is fully overwritten. Limbs are
/// little-endian, operands need not be normalized. an == 0 or bn == 0
/// yields all-zero output.
void MulLimbs(const uint32_t* a, size_t an, const uint32_t* b, size_t bn,
              uint32_t* out, MulKernel kernel);

}  // namespace provdb::crypto

#endif  // PROVDB_CRYPTO_BIGNUM_KERNELS_H_
