#include "crypto/bignum.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace provdb::crypto {

namespace {

constexpr uint64_t kLimbBase = 1ull << 32;

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Count of leading zero bits in a non-zero 32-bit limb.
int CountLeadingZeros32(uint32_t x) {
  int n = 0;
  if ((x & 0xFFFF0000u) == 0) {
    n += 16;
    x <<= 16;
  }
  if ((x & 0xFF000000u) == 0) {
    n += 8;
    x <<= 8;
  }
  if ((x & 0xF0000000u) == 0) {
    n += 4;
    x <<= 4;
  }
  if ((x & 0xC0000000u) == 0) {
    n += 2;
    x <<= 2;
  }
  if ((x & 0x80000000u) == 0) {
    n += 1;
  }
  return n;
}

}  // namespace

void BigUInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigUInt::BigUInt(uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<uint32_t>(v));
    uint32_t hi = static_cast<uint32_t>(v >> 32);
    if (hi != 0) {
      limbs_.push_back(hi);
    }
  }
}

BigUInt BigUInt::FromBytesBigEndian(ByteView bytes) {
  BigUInt out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // Byte i from the end belongs to limb i/4, shifted by 8*(i%4).
    size_t from_end = bytes.size() - 1 - i;
    out.limbs_[i / 4] |= static_cast<uint32_t>(bytes[from_end]) << (8 * (i % 4));
  }
  out.Normalize();
  return out;
}

Result<BigUInt> BigUInt::FromHexString(std::string_view hex) {
  if (hex.empty()) {
    return Status::InvalidArgument("empty hex string");
  }
  BigUInt out;
  for (char c : hex) {
    int nib = HexNibble(c);
    if (nib < 0) {
      return Status::InvalidArgument("non-hex character");
    }
    out = out.ShiftLeft(4);
    if (nib != 0) {
      out = Add(out, BigUInt(static_cast<uint64_t>(nib)));
    }
  }
  return out;
}

Result<BigUInt> BigUInt::FromDecimalString(std::string_view dec) {
  if (dec.empty()) {
    return Status::InvalidArgument("empty decimal string");
  }
  BigUInt out;
  const BigUInt ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-decimal character");
    }
    out = Mul(out, ten);
    out = Add(out, BigUInt(static_cast<uint64_t>(c - '0')));
  }
  return out;
}

Bytes BigUInt::ToBytesBigEndian() const {
  if (limbs_.empty()) {
    return Bytes{0};
  }
  Bytes out;
  size_t total_bytes = (BitLength() + 7) / 8;
  out.resize(total_bytes);
  for (size_t i = 0; i < total_bytes; ++i) {
    // Byte i from the end of the output.
    uint32_t limb = limbs_[i / 4];
    out[total_bytes - 1 - i] = static_cast<uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

Result<Bytes> BigUInt::ToBytesBigEndianPadded(size_t width) const {
  Bytes minimal = ToBytesBigEndian();
  if (IsZero()) {
    minimal.clear();
  }
  if (minimal.size() > width) {
    return Status::OutOfRange("value does not fit in requested width");
  }
  Bytes out(width - minimal.size(), 0);
  AppendBytes(&out, minimal);
  return out;
}

std::string BigUInt::ToHexString() const {
  if (limbs_.empty()) {
    return "0";
  }
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      int nib = (limbs_[i] >> shift) & 0xF;
      if (leading && nib == 0) continue;
      leading = false;
      out.push_back(kDigits[nib]);
    }
  }
  return out.empty() ? "0" : out;
}

std::string BigUInt::ToDecimalString() const {
  if (limbs_.empty()) {
    return "0";
  }
  // Repeatedly divide by 10^9 and emit 9-digit groups.
  std::vector<uint32_t> work = limbs_;
  std::string out;
  while (!work.empty()) {
    uint64_t rem = 0;
    for (size_t i = work.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<uint32_t>(cur / 1000000000ull);
      rem = cur % 1000000000ull;
    }
    while (!work.empty() && work.back() == 0) {
      work.pop_back();
    }
    std::string group = std::to_string(rem);
    if (!work.empty()) {
      group = std::string(9 - group.size(), '0') + group;
    }
    out = group + out;
  }
  return out;
}

size_t BigUInt::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  return limbs_.size() * 32 - CountLeadingZeros32(limbs_.back());
}

bool BigUInt::GetBit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t BigUInt::ToUint64() const {
  uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigUInt::Compare(const BigUInt& a, const BigUInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUInt BigUInt::Add(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Normalize();
  return out;
}

BigUInt BigUInt::Sub(const BigUInt& a, const BigUInt& b) {
  // Enforced in all build types, not just under NDEBUG-off: a silent
  // two's-complement-style wrap would flow a garbage limb vector into
  // RSA/CRT arithmetic (see header). Call-site audit as of this writing:
  //   - rsa.cc key generation: Sub(n, 1), Sub(n, 3), Sub(p, 1), Sub(q, 1)
  //     on primes >= 3 by construction;
  //   - rsa.cc SignDigest CRT: Sub(s1, s2) behind an explicit Compare,
  //     and Sub(lifted, s2_mod_p) where lifted = s1 + p > s2_mod_p
  //     because s2_mod_p < p;
  //   - ModInverse below: magnitude subtraction behind an explicit
  //     Compare, and Sub(m, reduced) with reduced = old_t mod m < m;
  //   - MontgomeryContext::MulReduce / ModExp: Sub(out, modulus_) behind
  //     an explicit Compare.
  if (Compare(a, b) < 0) {
    std::fprintf(stderr,
                 "BigUInt::Sub precondition violated: a < b "
                 "(a=%zu bits, b=%zu bits); aborting\n",
                 a.BitLength(), b.BitLength());
    std::abort();
  }
  BigUInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) {
      diff -= b.limbs_[i];
    }
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::Mul(const BigUInt& a, const BigUInt& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigUInt();
  }
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + b.limbs_.size()] += static_cast<uint32_t>(carry);
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigUInt out = *this;
    return out;
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::ShiftRight(size_t bits) const {
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) {
    return BigUInt();
  }
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Normalize();
  return out;
}

Result<DivModResult> BigUInt::DivMod(const BigUInt& dividend,
                                              const BigUInt& divisor) {
  if (divisor.IsZero()) {
    return Status::InvalidArgument("division by zero");
  }
  if (Compare(dividend, divisor) < 0) {
    return DivModResult{BigUInt(), dividend};
  }
  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    uint64_t d = divisor.limbs_[0];
    BigUInt q;
    q.limbs_.assign(dividend.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = dividend.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | dividend.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    return DivModResult{std::move(q), BigUInt(rem)};
  }

  // Knuth TAOCP vol. 2, Algorithm D.
  const size_t n = divisor.limbs_.size();
  const size_t m = dividend.limbs_.size() - n;
  const int shift = CountLeadingZeros32(divisor.limbs_.back());

  // Normalized copies: v has its top bit set; u gains one extra limb.
  BigUInt v_big = divisor.ShiftLeft(shift);
  BigUInt u_big = dividend.ShiftLeft(shift);
  std::vector<uint32_t> v = v_big.limbs_;
  std::vector<uint32_t> u = u_big.limbs_;
  u.resize(dividend.limbs_.size() + 1, 0);
  v.resize(n, 0);

  BigUInt q;
  q.limbs_.assign(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat from the top two limbs of the current remainder.
    uint64_t numerator =
        (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t q_hat = numerator / v[n - 1];
    uint64_t r_hat = numerator % v[n - 1];

    while (q_hat >= kLimbBase ||
           q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >= kLimbBase) {
        break;
      }
    }

    // Multiply-and-subtract: u[j..j+n] -= q_hat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u[j + i]) -
                     static_cast<int64_t>(product & 0xFFFFFFFFull) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[j + i] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(u[j + n]) -
                   static_cast<int64_t>(carry) - borrow;
    bool negative = diff < 0;
    if (negative) {
      diff += static_cast<int64_t>(kLimbBase);
    }
    u[j + n] = static_cast<uint32_t>(diff);

    if (negative) {
      // q_hat was one too large; add the divisor back.
      --q_hat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[j + i]) + v[i] + add_carry;
        u[j + i] = static_cast<uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + add_carry);
    }

    q.limbs_[j] = static_cast<uint32_t>(q_hat);
  }

  q.Normalize();
  BigUInt r;
  r.limbs_.assign(u.begin(), u.begin() + n);
  r.Normalize();
  r = r.ShiftRight(shift);
  return DivModResult{std::move(q), std::move(r)};
}

Result<BigUInt> BigUInt::Mod(const BigUInt& a, const BigUInt& m) {
  PROVDB_ASSIGN_OR_RETURN(DivModResult dm, DivMod(a, m));
  return dm.remainder;
}

Result<BigUInt> BigUInt::ModExp(const BigUInt& base, const BigUInt& exp,
                                const BigUInt& m) {
  if (m.IsZero()) {
    return Status::InvalidArgument("modulus must be non-zero");
  }
  if (m == BigUInt(1)) {
    return BigUInt();
  }
  if (m.IsOdd()) {
    PROVDB_ASSIGN_OR_RETURN(MontgomeryContext ctx, MontgomeryContext::Create(m));
    return ctx.ModExp(base, exp);
  }
  // Generic square-and-multiply for even moduli. The square feeding bit
  // i+1 is computed only while bits remain: squaring after the last
  // exponent bit would be a full-width Mul + DivMod whose result is
  // discarded — pure waste (for RSA-sized operands the single largest
  // step of the loop).
  PROVDB_ASSIGN_OR_RETURN(BigUInt acc, Mod(base, m));
  BigUInt result(1);
  size_t bits = exp.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exp.GetBit(i)) {
      PROVDB_ASSIGN_OR_RETURN(result, Mod(Mul(result, acc), m));
    }
    if (i + 1 < bits) {
      PROVDB_ASSIGN_OR_RETURN(acc, Mod(Mul(acc, acc), m));
    }
  }
  return result;
}

BigUInt BigUInt::Gcd(BigUInt a, BigUInt b) {
  while (!b.IsZero()) {
    auto dm = DivMod(a, b);
    a = std::move(b);
    b = std::move(dm.value().remainder);
  }
  return a;
}

Result<BigUInt> BigUInt::ModInverse(const BigUInt& a, const BigUInt& m) {
  if (m.IsZero()) {
    return Status::InvalidArgument("modulus must be non-zero");
  }
  // Extended Euclid tracking only the t-coefficient, with explicit signs.
  PROVDB_ASSIGN_OR_RETURN(BigUInt r, Mod(a, m));
  BigUInt old_r = m;
  BigUInt old_t;            // 0
  BigUInt t(1);
  bool old_t_neg = false;
  bool t_neg = false;

  while (!r.IsZero()) {
    PROVDB_ASSIGN_OR_RETURN(DivModResult dm, DivMod(old_r, r));
    const BigUInt& q = dm.quotient;

    // new_t = old_t - q * t (signed).
    BigUInt qt = Mul(q, t);
    bool qt_neg = t_neg;
    BigUInt new_t;
    bool new_t_neg;
    if (old_t_neg == qt_neg) {
      // Same sign: magnitude subtraction, sign follows the larger.
      if (Compare(old_t, qt) >= 0) {
        new_t = Sub(old_t, qt);
        new_t_neg = old_t_neg;
      } else {
        new_t = Sub(qt, old_t);
        new_t_neg = !old_t_neg;
      }
    } else {
      new_t = Add(old_t, qt);
      new_t_neg = old_t_neg;
    }
    if (new_t.IsZero()) {
      new_t_neg = false;
    }

    old_r = std::move(r);
    r = std::move(dm.remainder);
    old_t = std::move(t);
    old_t_neg = t_neg;
    t = std::move(new_t);
    t_neg = new_t_neg;
  }

  if (old_r != BigUInt(1)) {
    return Status::InvalidArgument("no modular inverse: gcd != 1");
  }
  if (old_t_neg) {
    PROVDB_ASSIGN_OR_RETURN(BigUInt reduced, Mod(old_t, m));
    if (reduced.IsZero()) {
      return reduced;
    }
    return Sub(m, reduced);
  }
  return Mod(old_t, m);
}

// ---------------------------------------------------------------------
// MontgomeryContext

Result<MontgomeryContext> MontgomeryContext::Create(const BigUInt& modulus) {
  if (!modulus.IsOdd() || modulus <= BigUInt(1)) {
    return Status::InvalidArgument("Montgomery modulus must be odd and > 1");
  }
  MontgomeryContext ctx;
  ctx.modulus_ = modulus;
  ctx.num_limbs_ = modulus.limbs_.size();

  // n' = -m^-1 mod 2^32 via Newton iteration (5 steps suffice for 32 bits).
  uint32_t m0 = modulus.limbs_[0];
  uint32_t inv = 1;
  for (int i = 0; i < 5; ++i) {
    inv *= 2 - m0 * inv;
  }
  ctx.n_prime_ = static_cast<uint32_t>(0u - inv);

  BigUInt r = BigUInt(1).ShiftLeft(32 * ctx.num_limbs_);
  PROVDB_ASSIGN_OR_RETURN(BigUInt r_mod, BigUInt::Mod(r, modulus));
  PROVDB_ASSIGN_OR_RETURN(
      BigUInt r2_mod, BigUInt::Mod(BigUInt::Mul(r_mod, r_mod), modulus));
  ctx.r_mod_m_ = std::move(r_mod);
  ctx.r2_mod_m_ = std::move(r2_mod);
  return ctx;
}

BigUInt MontgomeryContext::MulReduce(const BigUInt& a, const BigUInt& b) const {
  const size_t n = num_limbs_;
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  std::vector<uint32_t> t(n + 2, 0);
  for (size_t i = 0; i < n; ++i) {
    uint64_t ai = i < a.limbs_.size() ? a.limbs_[i] : 0;

    // t += a[i] * b
    uint64_t carry = 0;
    for (size_t j = 0; j < n; ++j) {
      uint64_t bj = j < b.limbs_.size() ? b.limbs_[j] : 0;
      uint64_t cur = t[j] + ai * bj + carry;
      t[j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    uint64_t cur = t[n] + carry;
    t[n] = static_cast<uint32_t>(cur);
    t[n + 1] = static_cast<uint32_t>(t[n + 1] + (cur >> 32));

    // t += (t[0] * n') * m; then t >>= 32 (one limb).
    uint32_t u = static_cast<uint32_t>(t[0] * n_prime_);
    carry = 0;
    for (size_t j = 0; j < n; ++j) {
      uint64_t cur2 = t[j] + static_cast<uint64_t>(u) * modulus_.limbs_[j] +
                      carry;
      t[j] = static_cast<uint32_t>(cur2);
      carry = cur2 >> 32;
    }
    cur = t[n] + carry;
    t[n] = static_cast<uint32_t>(cur);
    t[n + 1] = static_cast<uint32_t>(t[n + 1] + (cur >> 32));

    // Shift down one limb (t[0] is zero after the REDC step).
    for (size_t j = 0; j <= n; ++j) {
      t[j] = t[j + 1];
    }
    t[n + 1] = 0;
  }

  BigUInt out;
  out.limbs_.assign(t.begin(), t.begin() + n + 1);
  out.Normalize();
  if (BigUInt::Compare(out, modulus_) >= 0) {
    out = BigUInt::Sub(out, modulus_);
  }
  return out;
}

BigUInt MontgomeryContext::ToMontgomery(const BigUInt& a) const {
  BigUInt reduced = a;
  if (BigUInt::Compare(reduced, modulus_) >= 0) {
    reduced = BigUInt::Mod(reduced, modulus_).value();
  }
  return MulReduce(reduced, r2_mod_m_);
}

BigUInt MontgomeryContext::FromMontgomery(const BigUInt& a) const {
  return MulReduce(a, BigUInt(1));
}

BigUInt MontgomeryContext::ModExp(const BigUInt& base,
                                  const BigUInt& exp) const {
  BigUInt acc = ToMontgomery(base);
  BigUInt result = r_mod_m_;  // 1 in Montgomery form.
  size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = MulReduce(result, result);
    if (exp.GetBit(i)) {
      result = MulReduce(result, acc);
    }
  }
  return FromMontgomery(result);
}

}  // namespace provdb::crypto
