#include "crypto/bignum.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "crypto/bignum_kernels.h"
#include "observability/metrics.h"

namespace provdb::crypto {

namespace {

constexpr uint64_t kLimbBase = 1ull << 32;

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Count of leading zero bits in a non-zero 32-bit limb.
int CountLeadingZeros32(uint32_t x) {
  int n = 0;
  if ((x & 0xFFFF0000u) == 0) {
    n += 16;
    x <<= 16;
  }
  if ((x & 0xFF000000u) == 0) {
    n += 8;
    x <<= 8;
  }
  if ((x & 0xF0000000u) == 0) {
    n += 4;
    x <<= 4;
  }
  if ((x & 0xC0000000u) == 0) {
    n += 2;
    x <<= 2;
  }
  if ((x & 0x80000000u) == 0) {
    n += 1;
  }
  return n;
}

}  // namespace

void BigUInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigUInt::BigUInt(uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<uint32_t>(v));
    uint32_t hi = static_cast<uint32_t>(v >> 32);
    if (hi != 0) {
      limbs_.push_back(hi);
    }
  }
}

BigUInt BigUInt::FromBytesBigEndian(ByteView bytes) {
  BigUInt out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // Byte i from the end belongs to limb i/4, shifted by 8*(i%4).
    size_t from_end = bytes.size() - 1 - i;
    out.limbs_[i / 4] |= static_cast<uint32_t>(bytes[from_end]) << (8 * (i % 4));
  }
  out.Normalize();
  return out;
}

Result<BigUInt> BigUInt::FromHexString(std::string_view hex) {
  if (hex.empty()) {
    return Status::InvalidArgument("empty hex string");
  }
  BigUInt out;
  for (char c : hex) {
    int nib = HexNibble(c);
    if (nib < 0) {
      return Status::InvalidArgument("non-hex character");
    }
    out = out.ShiftLeft(4);
    if (nib != 0) {
      out = Add(out, BigUInt(static_cast<uint64_t>(nib)));
    }
  }
  return out;
}

Result<BigUInt> BigUInt::FromDecimalString(std::string_view dec) {
  if (dec.empty()) {
    return Status::InvalidArgument("empty decimal string");
  }
  BigUInt out;
  const BigUInt ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-decimal character");
    }
    out = Mul(out, ten);
    out = Add(out, BigUInt(static_cast<uint64_t>(c - '0')));
  }
  return out;
}

Bytes BigUInt::ToBytesBigEndian() const {
  if (limbs_.empty()) {
    return Bytes{0};
  }
  Bytes out;
  size_t total_bytes = (BitLength() + 7) / 8;
  out.resize(total_bytes);
  for (size_t i = 0; i < total_bytes; ++i) {
    // Byte i from the end of the output.
    uint32_t limb = limbs_[i / 4];
    out[total_bytes - 1 - i] = static_cast<uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

Result<Bytes> BigUInt::ToBytesBigEndianPadded(size_t width) const {
  Bytes minimal = ToBytesBigEndian();
  if (IsZero()) {
    minimal.clear();
  }
  if (minimal.size() > width) {
    return Status::OutOfRange("value does not fit in requested width");
  }
  Bytes out(width - minimal.size(), 0);
  AppendBytes(&out, minimal);
  return out;
}

std::string BigUInt::ToHexString() const {
  if (limbs_.empty()) {
    return "0";
  }
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      int nib = (limbs_[i] >> shift) & 0xF;
      if (leading && nib == 0) continue;
      leading = false;
      out.push_back(kDigits[nib]);
    }
  }
  return out.empty() ? "0" : out;
}

std::string BigUInt::ToDecimalString() const {
  if (limbs_.empty()) {
    return "0";
  }
  // Repeatedly divide by 10^9 and emit 9-digit groups.
  std::vector<uint32_t> work = limbs_;
  std::string out;
  while (!work.empty()) {
    uint64_t rem = 0;
    for (size_t i = work.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<uint32_t>(cur / 1000000000ull);
      rem = cur % 1000000000ull;
    }
    while (!work.empty() && work.back() == 0) {
      work.pop_back();
    }
    std::string group = std::to_string(rem);
    if (!work.empty()) {
      group = std::string(9 - group.size(), '0') + group;
    }
    out = group + out;
  }
  return out;
}

size_t BigUInt::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  return limbs_.size() * 32 - CountLeadingZeros32(limbs_.back());
}

bool BigUInt::GetBit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t BigUInt::ToUint64() const {
  uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigUInt::Compare(const BigUInt& a, const BigUInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUInt BigUInt::Add(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Normalize();
  return out;
}

BigUInt BigUInt::Sub(const BigUInt& a, const BigUInt& b) {
  // Enforced in all build types, not just under NDEBUG-off: a silent
  // two's-complement-style wrap would flow a garbage limb vector into
  // RSA/CRT arithmetic (see header). Call-site audit as of this writing:
  //   - rsa.cc key generation: Sub(n, 1), Sub(n, 3), Sub(p, 1), Sub(q, 1)
  //     on primes >= 3 by construction;
  //   - rsa.cc SignDigest CRT: Sub(s1, s2) behind an explicit Compare,
  //     and Sub(lifted, s2_mod_p) where lifted = s1 + p > s2_mod_p
  //     because s2_mod_p < p;
  //   - ModInverse below: magnitude subtraction behind an explicit
  //     Compare, and Sub(m, reduced) with reduced = old_t mod m < m.
  // MontgomeryContext no longer calls Sub: its conditional final
  // subtraction runs on flat limbs inside MontMulInto, likewise behind
  // an explicit comparison.
  if (Compare(a, b) < 0) {
    std::fprintf(stderr,
                 "BigUInt::Sub precondition violated: a < b "
                 "(a=%zu bits, b=%zu bits); aborting\n",
                 a.BitLength(), b.BitLength());
    std::abort();
  }
  BigUInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) {
      diff -= b.limbs_[i];
    }
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::Mul(const BigUInt& a, const BigUInt& b) {
  return MulWithKernel(a, b, SelectedBigNumKernels().mul);
}

BigUInt BigUInt::MulWithKernel(const BigUInt& a, const BigUInt& b,
                               MulKernel kernel) {
  if (a.IsZero() || b.IsZero()) {
    return BigUInt();
  }
  BigUInt out;
  out.limbs_.resize(a.limbs_.size() + b.limbs_.size());
  MulLimbs(a.limbs_.data(), a.limbs_.size(), b.limbs_.data(),
           b.limbs_.size(), out.limbs_.data(), kernel);
  out.Normalize();
  return out;
}

BigUInt BigUInt::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigUInt out = *this;
    return out;
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::ShiftRight(size_t bits) const {
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) {
    return BigUInt();
  }
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Normalize();
  return out;
}

Result<DivModResult> BigUInt::DivMod(const BigUInt& dividend,
                                              const BigUInt& divisor) {
  if (divisor.IsZero()) {
    return Status::InvalidArgument("division by zero");
  }
  if (Compare(dividend, divisor) < 0) {
    return DivModResult{BigUInt(), dividend};
  }
  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    uint64_t d = divisor.limbs_[0];
    BigUInt q;
    q.limbs_.assign(dividend.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = dividend.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | dividend.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    return DivModResult{std::move(q), BigUInt(rem)};
  }

  // Knuth TAOCP vol. 2, Algorithm D.
  const size_t n = divisor.limbs_.size();
  const size_t m = dividend.limbs_.size() - n;
  const int shift = CountLeadingZeros32(divisor.limbs_.back());

  // Normalized copies: v has its top bit set; u gains one extra limb.
  BigUInt v_big = divisor.ShiftLeft(shift);
  BigUInt u_big = dividend.ShiftLeft(shift);
  std::vector<uint32_t> v = v_big.limbs_;
  std::vector<uint32_t> u = u_big.limbs_;
  u.resize(dividend.limbs_.size() + 1, 0);
  v.resize(n, 0);

  BigUInt q;
  q.limbs_.assign(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat from the top two limbs of the current remainder.
    uint64_t numerator =
        (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t q_hat = numerator / v[n - 1];
    uint64_t r_hat = numerator % v[n - 1];

    while (q_hat >= kLimbBase ||
           q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >= kLimbBase) {
        break;
      }
    }

    // Multiply-and-subtract: u[j..j+n] -= q_hat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u[j + i]) -
                     static_cast<int64_t>(product & 0xFFFFFFFFull) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[j + i] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(u[j + n]) -
                   static_cast<int64_t>(carry) - borrow;
    bool negative = diff < 0;
    if (negative) {
      diff += static_cast<int64_t>(kLimbBase);
    }
    u[j + n] = static_cast<uint32_t>(diff);

    if (negative) {
      // q_hat was one too large; add the divisor back.
      --q_hat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[j + i]) + v[i] + add_carry;
        u[j + i] = static_cast<uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + add_carry);
    }

    q.limbs_[j] = static_cast<uint32_t>(q_hat);
  }

  q.Normalize();
  BigUInt r;
  r.limbs_.assign(u.begin(), u.begin() + n);
  r.Normalize();
  r = r.ShiftRight(shift);
  return DivModResult{std::move(q), std::move(r)};
}

Result<BigUInt> BigUInt::Mod(const BigUInt& a, const BigUInt& m) {
  PROVDB_ASSIGN_OR_RETURN(DivModResult dm, DivMod(a, m));
  return dm.remainder;
}

Result<BigUInt> BigUInt::ModExp(const BigUInt& base, const BigUInt& exp,
                                const BigUInt& m) {
  if (m.IsZero()) {
    return Status::InvalidArgument("modulus must be non-zero");
  }
  if (m == BigUInt(1)) {
    return BigUInt();
  }
  if (m.IsOdd()) {
    PROVDB_ASSIGN_OR_RETURN(MontgomeryContext ctx, MontgomeryContext::Create(m));
    return ctx.ModExp(base, exp);
  }
  // Generic square-and-multiply for even moduli. The square feeding bit
  // i+1 is computed only while bits remain: squaring after the last
  // exponent bit would be a full-width Mul + DivMod whose result is
  // discarded — pure waste (for RSA-sized operands the single largest
  // step of the loop).
  PROVDB_ASSIGN_OR_RETURN(BigUInt acc, Mod(base, m));
  BigUInt result(1);
  size_t bits = exp.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exp.GetBit(i)) {
      PROVDB_ASSIGN_OR_RETURN(result, Mod(Mul(result, acc), m));
    }
    if (i + 1 < bits) {
      PROVDB_ASSIGN_OR_RETURN(acc, Mod(Mul(acc, acc), m));
    }
  }
  return result;
}

BigUInt BigUInt::Gcd(BigUInt a, BigUInt b) {
  while (!b.IsZero()) {
    auto dm = DivMod(a, b);
    a = std::move(b);
    b = std::move(dm.value().remainder);
  }
  return a;
}

Result<BigUInt> BigUInt::ModInverse(const BigUInt& a, const BigUInt& m) {
  if (m.IsZero()) {
    return Status::InvalidArgument("modulus must be non-zero");
  }
  // Extended Euclid tracking only the t-coefficient, with explicit signs.
  PROVDB_ASSIGN_OR_RETURN(BigUInt r, Mod(a, m));
  BigUInt old_r = m;
  BigUInt old_t;            // 0
  BigUInt t(1);
  bool old_t_neg = false;
  bool t_neg = false;

  while (!r.IsZero()) {
    PROVDB_ASSIGN_OR_RETURN(DivModResult dm, DivMod(old_r, r));
    const BigUInt& q = dm.quotient;

    // new_t = old_t - q * t (signed).
    BigUInt qt = Mul(q, t);
    bool qt_neg = t_neg;
    BigUInt new_t;
    bool new_t_neg;
    if (old_t_neg == qt_neg) {
      // Same sign: magnitude subtraction, sign follows the larger.
      if (Compare(old_t, qt) >= 0) {
        new_t = Sub(old_t, qt);
        new_t_neg = old_t_neg;
      } else {
        new_t = Sub(qt, old_t);
        new_t_neg = !old_t_neg;
      }
    } else {
      new_t = Add(old_t, qt);
      new_t_neg = old_t_neg;
    }
    if (new_t.IsZero()) {
      new_t_neg = false;
    }

    old_r = std::move(r);
    r = std::move(dm.remainder);
    old_t = std::move(t);
    old_t_neg = t_neg;
    t = std::move(new_t);
    t_neg = new_t_neg;
  }

  if (old_r != BigUInt(1)) {
    return Status::InvalidArgument("no modular inverse: gcd != 1");
  }
  if (old_t_neg) {
    PROVDB_ASSIGN_OR_RETURN(BigUInt reduced, Mod(old_t, m));
    if (reduced.IsZero()) {
      return reduced;
    }
    return Sub(m, reduced);
  }
  return Mod(old_t, m);
}

// ---------------------------------------------------------------------
// MontgomeryContext

namespace {

using detail::MontLimb;

// Double-width type for the engine radix: every MontLimb product must
// fit it exactly.
#if defined(__SIZEOF_INT128__)
using MontWide = unsigned __int128;
#else
using MontWide = uint64_t;
#endif

constexpr size_t kMontLimbBits = sizeof(MontLimb) * 8;

// Repacks little-endian 32-bit limbs into `count` engine limbs
// (zero-padded). Works for any engine radix that is a multiple of 32.
std::vector<MontLimb> PackMontLimbs(const std::vector<uint32_t>& limbs,
                                    size_t count) {
  std::vector<MontLimb> out(count, 0);
  for (size_t i = 0; i < limbs.size(); ++i) {
    out[i * 32 / kMontLimbBits] |= static_cast<MontLimb>(limbs[i])
                                   << ((i * 32) % kMontLimbBits);
  }
  return out;
}

// Constant-time window-table row selection: touches every row and
// accumulates the requested one through an all-ones/all-zero mask, so
// neither memory addresses nor branches depend on the (secret) window
// value. `rows` is at most 32 (k <= 5), so r ^ idx < 2^31 and the
// borrow trick below is exact. See DESIGN.md §15.
void CtSelectRow(const MontLimb* table, uint32_t rows, size_t n,
                 uint32_t idx, MontLimb* out) {
  std::fill(out, out + n, static_cast<MontLimb>(0));
  for (uint32_t r = 0; r < rows; ++r) {
    const uint32_t d = r ^ idx;  // 0 iff this row
    const MontLimb mask = static_cast<MontLimb>(0) -
                          static_cast<MontLimb>((d - 1u) >> 31);
    const MontLimb* row = table + static_cast<size_t>(r) * n;
    for (size_t j = 0; j < n; ++j) {
      out[j] |= row[j] & mask;
    }
  }
}

// k exponent bits starting at bit `lo` (LSB first); bits past the end
// read as zero, so the top window is naturally short.
uint32_t WindowAt(const BigUInt& exp, size_t lo, size_t k) {
  uint32_t w = 0;
  for (size_t j = 0; j < k; ++j) {
    if (exp.GetBit(lo + j)) {
      w |= 1u << j;
    }
  }
  return w;
}

}  // namespace

Result<MontgomeryContext> MontgomeryContext::Create(const BigUInt& modulus) {
  if (!modulus.IsOdd() || modulus <= BigUInt(1)) {
    return Status::InvalidArgument("Montgomery modulus must be odd and > 1");
  }
  // Context derivation (two divisions + the Newton inverse) is the cost
  // callers are expected to amortize; the counter lets tests pin that a
  // cached signer/verifier really does reuse its context.
  static observability::Counter* context_counter =
      observability::GlobalMetrics().counter("crypto.bignum.montgomery_contexts");
  context_counter->Increment();
  MontgomeryContext ctx;
  ctx.modulus_ = modulus;
  ctx.num_limbs_ = modulus.limbs_.size();

  // n' = -m^-1 mod 2^32 via Newton iteration (5 steps suffice for 32 bits).
  uint32_t m0 = modulus.limbs_[0];
  uint32_t inv = 1;
  for (int i = 0; i < 5; ++i) {
    inv *= 2 - m0 * inv;
  }
  ctx.n_prime_ = static_cast<uint32_t>(0u - inv);

  BigUInt r = BigUInt(1).ShiftLeft(32 * ctx.num_limbs_);
  PROVDB_ASSIGN_OR_RETURN(BigUInt r_mod, BigUInt::Mod(r, modulus));
  PROVDB_ASSIGN_OR_RETURN(
      BigUInt r2_mod, BigUInt::Mod(BigUInt::Mul(r_mod, r_mod), modulus));
  ctx.r_mod_m_ = std::move(r_mod);
  ctx.r2_mod_m_ = std::move(r2_mod);

  // Engine-radix mirror for the exponentiation ladder (header comment on
  // mont_m_): same modulus repacked into MontLimb limbs, with R_L and
  // n' recomputed for that radix.
  ctx.mont_limbs_ =
      (ctx.num_limbs_ * 32 + kMontLimbBits - 1) / kMontLimbBits;
  ctx.mont_m_ = PackMontLimbs(modulus.limbs_, ctx.mont_limbs_);
  MontLimb inv_l = 1;
  for (size_t i = 0; kMontLimbBits >> i > 1; ++i) {
    inv_l *= 2 - ctx.mont_m_[0] * inv_l;  // doubles correct low bits
  }
  ctx.mont_n_prime_ = static_cast<MontLimb>(0) - inv_l;

  BigUInt r_l = BigUInt(1).ShiftLeft(kMontLimbBits * ctx.mont_limbs_);
  PROVDB_ASSIGN_OR_RETURN(BigUInt r_l_mod, BigUInt::Mod(r_l, modulus));
  PROVDB_ASSIGN_OR_RETURN(
      BigUInt r2_l_mod,
      BigUInt::Mod(BigUInt::Mul(r_l_mod, r_l_mod), modulus));
  ctx.mont_r_ = PackMontLimbs(r_l_mod.limbs_, ctx.mont_limbs_);
  ctx.mont_r2_ = PackMontLimbs(r2_l_mod.limbs_, ctx.mont_limbs_);
  return ctx;
}

void MontgomeryContext::MontMulInto(const uint32_t* a, const uint32_t* b,
                                    uint32_t* out, uint32_t* scratch) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication
  // on flat limbs. The one-limb shift after each REDC round is fused into
  // the REDC pass (it writes t[j-1]), so each round is exactly two
  // multiply-accumulate sweeps. `out` is written only after both inputs
  // have been fully consumed, which is what makes aliasing legal.
  const size_t n = num_limbs_;
  const uint32_t* m = modulus_.limbs_.data();
  uint32_t* t = scratch;
  std::fill(t, t + n + 2, 0u);
  for (size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    const uint64_t ai = a[i];
    uint64_t carry = 0;
    for (size_t j = 0; j < n; ++j) {
      uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    uint64_t cur = t[n] + carry;
    t[n] = static_cast<uint32_t>(cur);
    t[n + 1] = static_cast<uint32_t>(t[n + 1] + (cur >> 32));

    // t = (t + (t[0] * n') * m) >> 32. The low limb of the sum is zero
    // by construction of n', so writing t[j-1] performs the shift.
    const uint32_t u = static_cast<uint32_t>(t[0] * n_prime_);
    uint64_t cur2 = t[0] + static_cast<uint64_t>(u) * m[0];
    carry = cur2 >> 32;
    for (size_t j = 1; j < n; ++j) {
      cur2 = t[j] + static_cast<uint64_t>(u) * m[j] + carry;
      t[j - 1] = static_cast<uint32_t>(cur2);
      carry = cur2 >> 32;
    }
    cur = t[n] + carry;
    t[n - 1] = static_cast<uint32_t>(cur);
    t[n] = static_cast<uint32_t>(t[n + 1] + (cur >> 32));
    t[n + 1] = 0;
  }

  // Conditional final subtraction: t in [0, 2m), t[n] <= 1. The branch
  // is on the *value* of the product — accepted CIOS leakage, identical
  // to the pre-kernel implementation (DESIGN.md §15).
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;  // equal compares as >=, matching BigUInt::Compare
    for (size_t j = n; j-- > 0;) {
      if (t[j] != m[j]) {
        ge = t[j] > m[j];
        break;
      }
    }
  }
  if (ge) {
    int64_t borrow = 0;
    for (size_t j = 0; j < n; ++j) {
      int64_t diff = static_cast<int64_t>(t[j]) - borrow -
                     static_cast<int64_t>(m[j]);
      if (diff < 0) {
        diff += static_cast<int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      out[j] = static_cast<uint32_t>(diff);
    }
  } else {
    std::copy(t, t + n, out);
  }
}

void MontgomeryContext::MontMulIntoL(const MontLimb* a, const MontLimb* b,
                                     MontLimb* out,
                                     MontLimb* scratch) const {
  // Same fused CIOS as MontMulInto, on the engine radix: with 64-bit
  // limbs each multiply-accumulate sweep is a quarter the length, which
  // is where the ladder's speedup over the 32-bit core comes from.
  const size_t n = mont_limbs_;
  const MontLimb* m = mont_m_.data();
  MontLimb* t = scratch;
  std::fill(t, t + n + 2, static_cast<MontLimb>(0));
  for (size_t i = 0; i < n; ++i) {
    const MontWide ai = a[i];
    MontWide carry = 0;
    for (size_t j = 0; j < n; ++j) {
      MontWide cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<MontLimb>(cur);
      carry = cur >> kMontLimbBits;
    }
    MontWide cur = t[n] + carry;
    t[n] = static_cast<MontLimb>(cur);
    t[n + 1] = static_cast<MontLimb>(t[n + 1] +
                                     static_cast<MontLimb>(cur >> kMontLimbBits));

    const MontLimb u = static_cast<MontLimb>(t[0] * mont_n_prime_);
    MontWide cur2 = t[0] + static_cast<MontWide>(u) * m[0];
    carry = cur2 >> kMontLimbBits;
    for (size_t j = 1; j < n; ++j) {
      cur2 = t[j] + static_cast<MontWide>(u) * m[j] + carry;
      t[j - 1] = static_cast<MontLimb>(cur2);
      carry = cur2 >> kMontLimbBits;
    }
    cur = t[n] + carry;
    t[n - 1] = static_cast<MontLimb>(cur);
    t[n] = static_cast<MontLimb>(t[n + 1] +
                                 static_cast<MontLimb>(cur >> kMontLimbBits));
    t[n + 1] = 0;
  }

  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;  // equal compares as >=
    for (size_t j = n; j-- > 0;) {
      if (t[j] != m[j]) {
        ge = t[j] > m[j];
        break;
      }
    }
  }
  if (ge) {
    MontLimb borrow = 0;
    for (size_t j = 0; j < n; ++j) {
      const MontLimb mj = m[j];
      const MontLimb tj = t[j];
      const MontLimb diff = tj - mj - borrow;
      // Borrow out of tj - mj - borrow_in, branch-free on the limb
      // values (the subtraction itself is taken on a value branch
      // above, same as the 32-bit core).
      borrow = static_cast<MontLimb>((tj < mj) ||
                                     (tj == mj && borrow != 0) ? 1 : 0);
      out[j] = diff;
    }
  } else {
    std::copy(t, t + n, out);
  }
}

BigUInt MontgomeryContext::MulReduce(const BigUInt& a, const BigUInt& b) const {
  const size_t n = num_limbs_;
  std::vector<uint32_t> ap(n, 0);
  std::vector<uint32_t> bp(n, 0);
  std::vector<uint32_t> out(n);
  std::vector<uint32_t> scratch(n + 2);
  const size_t na = std::min(n, a.limbs_.size());
  std::copy(a.limbs_.begin(), a.limbs_.begin() + static_cast<ptrdiff_t>(na),
            ap.begin());
  const size_t nb = std::min(n, b.limbs_.size());
  std::copy(b.limbs_.begin(), b.limbs_.begin() + static_cast<ptrdiff_t>(nb),
            bp.begin());
  MontMulInto(ap.data(), bp.data(), out.data(), scratch.data());
  BigUInt result;
  result.limbs_.assign(out.begin(), out.end());
  result.Normalize();
  return result;
}

BigUInt MontgomeryContext::ToMontgomery(const BigUInt& a) const {
  BigUInt reduced = a;
  if (BigUInt::Compare(reduced, modulus_) >= 0) {
    reduced = BigUInt::Mod(reduced, modulus_).value();
  }
  return MulReduce(reduced, r2_mod_m_);
}

BigUInt MontgomeryContext::FromMontgomery(const BigUInt& a) const {
  return MulReduce(a, BigUInt(1));
}

BigUInt MontgomeryContext::ModExp(const BigUInt& base,
                                  const BigUInt& exp) const {
  return ModExpWithKernel(base, exp, SelectedBigNumKernels().mod_exp);
}

BigUInt MontgomeryContext::ModExpWithKernel(const BigUInt& base,
                                            const BigUInt& exp,
                                            ModExpKernel kernel) const {
  const size_t n = mont_limbs_;

  // All ladder state lives in flat engine-radix buffers allocated here,
  // once per exponentiation; the MontMulIntoL core allocates nothing.
  // For an RSA-1024 CRT half that replaces ~1500 vector allocations
  // with a handful.
  std::vector<MontLimb> scratch(n + 2);
  std::vector<MontLimb> result(n, 0);

  // base, reduced mod m, into Montgomery form: (base mod m) * R_L^2 *
  // R_L^-1.
  std::vector<MontLimb> base_mont;
  {
    BigUInt reduced = base;
    if (BigUInt::Compare(reduced, modulus_) >= 0) {
      reduced = BigUInt::Mod(reduced, modulus_).value();
    }
    base_mont = PackMontLimbs(reduced.limbs_, n);
    MontMulIntoL(base_mont.data(), mont_r2_.data(), base_mont.data(),
                 scratch.data());
  }

  const size_t bits = exp.BitLength();

  // Short exponents degrade windowed ladders to binary — see
  // kWindowedLadderMinExpBits. exp == 0 lands there too: zero loop
  // iterations leave result = 1 in Montgomery form.
  const bool binary = kernel == ModExpKernel::kBinary ||
                      bits < kWindowedLadderMinExpBits;

  if (binary) {
    // Bit-at-a-time square-and-multiply, MSB first.
    std::copy(mont_r_.begin(), mont_r_.end(), result.begin());
    for (size_t i = bits; i-- > 0;) {
      MontMulIntoL(result.data(), result.data(), result.data(),
                   scratch.data());
      if (exp.GetBit(i)) {
        MontMulIntoL(result.data(), base_mont.data(), result.data(),
                     scratch.data());
      }
    }
  } else {
    // Fixed k-bit windows, MSB first: per window k squarings then one
    // multiply by table[window]. table[0] = 1 in Montgomery form, so a
    // zero window performs the same multiply as any other — the
    // operation sequence depends only on BitLength(exp), and the table
    // row is fetched with the mask scan in CtSelectRow, never indexed
    // by the secret window value.
    const size_t k = kernel == ModExpKernel::kWindow4 ? 4 : 5;
    const uint32_t rows = 1u << k;
    std::vector<MontLimb> table(static_cast<size_t>(rows) * n);
    std::copy(mont_r_.begin(), mont_r_.end(), table.begin());
    std::copy(base_mont.begin(), base_mont.end(),
              table.begin() + static_cast<ptrdiff_t>(n));
    for (uint32_t w = 2; w < rows; ++w) {
      MontMulIntoL(&table[static_cast<size_t>(w - 1) * n],
                   base_mont.data(), &table[static_cast<size_t>(w) * n],
                   scratch.data());
    }

    std::vector<MontLimb> sel(n);
    const size_t windows = (bits + k - 1) / k;
    CtSelectRow(table.data(), rows, n, WindowAt(exp, (windows - 1) * k, k),
                result.data());
    for (size_t wi = windows - 1; wi-- > 0;) {
      for (size_t s = 0; s < k; ++s) {
        MontMulIntoL(result.data(), result.data(), result.data(),
                     scratch.data());
      }
      CtSelectRow(table.data(), rows, n, WindowAt(exp, wi * k, k),
                  sel.data());
      MontMulIntoL(result.data(), sel.data(), result.data(),
                   scratch.data());
    }
  }

  // Out of Montgomery form: result * 1 * R_L^-1 mod m.
  std::vector<MontLimb> one(n, 0);
  one[0] = 1;
  MontMulIntoL(result.data(), one.data(), result.data(), scratch.data());

  // Unpack engine limbs back into the 32-bit representation.
  BigUInt out;
  out.limbs_.assign(n * (kMontLimbBits / 32), 0);
  for (size_t j = 0; j < out.limbs_.size(); ++j) {
    out.limbs_[j] = static_cast<uint32_t>(
        result[j * 32 / kMontLimbBits] >> ((j * 32) % kMontLimbBits));
  }
  out.Normalize();
  return out;
}

}  // namespace provdb::crypto
