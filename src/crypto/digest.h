#ifndef PROVDB_CRYPTO_DIGEST_H_
#define PROVDB_CRYPTO_DIGEST_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/bytes.h"

namespace provdb::crypto {

/// Fixed-capacity message digest value. Avoids heap allocation on the
/// hashing hot path (subtree hashing touches every node of the database).
/// Capacity covers all supported algorithms (MD5 = 16, SHA-1 = 20,
/// SHA-256 = 32 bytes).
class Digest {
 public:
  static constexpr size_t kMaxSize = 32;

  Digest() : size_(0) { bytes_.fill(0); }

  /// Builds a digest from raw bytes. Truncates to kMaxSize (callers always
  /// pass genuine digest output, so truncation never occurs in practice).
  static Digest FromBytes(ByteView data) {
    Digest d;
    d.size_ = data.size() > kMaxSize ? kMaxSize : data.size();
    // An empty ByteView carries data() == nullptr, which memcpy must not
    // see even for a zero-length copy.
    if (d.size_ != 0) std::memcpy(d.bytes_.data(), data.data(), d.size_);
    return d;
  }

  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* mutable_data() { return bytes_.data(); }
  size_t size() const { return size_; }
  void set_size(size_t n) { size_ = n > kMaxSize ? kMaxSize : n; }
  bool empty() const { return size_ == 0; }

  ByteView view() const { return ByteView(bytes_.data(), size_); }
  Bytes ToBytes() const { return view().ToBytes(); }
  std::string ToHex() const;

  /// Constant-time equality: digest comparison is routinely "recomputed
  /// hash vs attacker-influenced stored hash", so the comparison must not
  /// leak the length of the matching prefix the way early-exit memcmp
  /// does (lint rule R04; helper in common/bytes.h).
  bool operator==(const Digest& other) const {
    return size_ == other.size_ && ConstantTimeEqual(view(), other.view());
  }
  bool operator!=(const Digest& other) const { return !(*this == other); }

  /// Lexicographic order; usable as a map key. Ordering is not an
  /// equality check on secret-derived bytes, so early-exit memcmp is fine.
  bool operator<(const Digest& other) const {
    // lint:allow ct-memcmp
    int c = std::memcmp(bytes_.data(), other.bytes_.data(),
                        size_ < other.size_ ? size_ : other.size_);
    if (c != 0) return c < 0;
    return size_ < other.size_;
  }

 private:
  std::array<uint8_t, kMaxSize> bytes_;
  size_t size_;
};

}  // namespace provdb::crypto

#endif  // PROVDB_CRYPTO_DIGEST_H_
