#include "crypto/digest.h"

#include "common/hex.h"

namespace provdb::crypto {

std::string Digest::ToHex() const { return HexEncode(view()); }

}  // namespace provdb::crypto
