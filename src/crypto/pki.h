#ifndef PROVDB_CRYPTO_PKI_H_
#define PROVDB_CRYPTO_PKI_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/rsa.h"
#include "crypto/signer.h"

namespace provdb::crypto {

/// Identifies a participant (user, process, transaction) — the `p` of each
/// provenance record. The paper assumes participants are authenticated by
/// a certificate authority (§2.3); this module implements that assumption.
using ParticipantId = uint64_t;

/// Binds a participant id and display name to an RSA public key, endorsed
/// by the certificate authority's signature.
struct ParticipantCertificate {
  ParticipantId participant_id = 0;
  std::string name;
  RsaPublicKey public_key;
  Bytes ca_signature;

  /// Canonical to-be-signed encoding (everything except ca_signature).
  Bytes ToBeSignedBytes() const;
};

/// Issues and validates participant certificates. A single CA suffices for
/// the paper's model; cross-CA chains are out of scope.
class CertificateAuthority {
 public:
  /// Creates a CA with a fresh `modulus_bits` RSA key drawn from `rng`.
  static Result<CertificateAuthority> Create(size_t modulus_bits, Rng* rng);

  const RsaPublicKey& public_key() const { return public_key_; }

  /// Signs a certificate binding `id`/`name` to `key`.
  Result<ParticipantCertificate> IssueCertificate(ParticipantId id,
                                                  std::string name,
                                                  const RsaPublicKey& key) const;

 private:
  CertificateAuthority(std::unique_ptr<RsaSigner> signer, RsaPublicKey pub)
      : signer_(std::move(signer)), public_key_(std::move(pub)) {}

  std::unique_ptr<RsaSigner> signer_;
  RsaPublicKey public_key_;
};

/// Validates `cert` against the CA public key.
Status VerifyCertificate(const RsaPublicKey& ca_key,
                         const ParticipantCertificate& cert);

/// Data recipients resolve record signers through this registry: it admits
/// only CA-endorsed certificates, so a forged binding of an attacker key to
/// a victim id is rejected at registration (supports R1/R8).
class ParticipantRegistry {
 public:
  explicit ParticipantRegistry(RsaPublicKey ca_key)
      : ca_key_(std::move(ca_key)) {}

  /// Verifies the CA signature, then records the certificate. Re-registering
  /// an id with a different key fails (kAlreadyExists).
  Status Register(const ParticipantCertificate& cert);

  /// Certificate for `id`, or kNotFound.
  Result<ParticipantCertificate> Lookup(ParticipantId id) const;

  /// Public key for `id`, or kNotFound.
  Result<RsaPublicKey> LookupKey(ParticipantId id) const;

  size_t size() const { return certs_.size(); }
  const RsaPublicKey& ca_key() const { return ca_key_; }

 private:
  RsaPublicKey ca_key_;
  std::map<ParticipantId, ParticipantCertificate> certs_;
};

/// A keyed participant: id, name, key pair, signing context, certificate.
/// Convenience aggregate used by examples, tests, and benchmarks.
class Participant {
 public:
  /// Generates a key pair, obtains a certificate from `ca`, and builds the
  /// signing context. `signature_hash` selects the hash-then-sign digest;
  /// a deployment uses one algorithm system-wide, so pass the same value
  /// used for state hashing (the paper's configuration is SHA-1).
  static Result<Participant> Create(
      ParticipantId id, std::string name, size_t modulus_bits, Rng* rng,
      const CertificateAuthority& ca,
      HashAlgorithm signature_hash = HashAlgorithm::kSha1);

  ParticipantId id() const { return id_; }
  const std::string& name() const { return name_; }
  const ParticipantCertificate& certificate() const { return certificate_; }
  const RsaPublicKey& public_key() const { return certificate_.public_key; }
  const Signer& signer() const { return *signer_; }

 private:
  Participant(ParticipantId id, std::string name,
              ParticipantCertificate cert, std::unique_ptr<RsaSigner> signer)
      : id_(id), name_(std::move(name)), certificate_(std::move(cert)),
        signer_(std::move(signer)) {}

  ParticipantId id_;
  std::string name_;
  ParticipantCertificate certificate_;
  std::unique_ptr<RsaSigner> signer_;
};

}  // namespace provdb::crypto

#endif  // PROVDB_CRYPTO_PKI_H_
