#include "observability/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace provdb::observability {
namespace {

/// Percentile estimate from bucket counts: find the bucket holding the
/// q-quantile observation, then interpolate linearly between its bounds by
/// the quantile's rank within the bucket. The overflow bucket has no upper
/// bound; its lower bound is reported (a deliberate underestimate).
double EstimatePercentile(const std::vector<uint64_t>& buckets,
                          uint64_t count, double q) {
  if (count == 0) return 0.0;
  double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    double lower = i == 0 ? 0.0
                          : static_cast<double>(
                                Histogram::BucketUpperMicros(i - 1));
    double upper = static_cast<double>(Histogram::BucketUpperMicros(i));
    if (i + 1 == buckets.size()) upper = lower;  // overflow: no upper bound
    uint64_t next = cumulative + buckets[i];
    if (rank <= static_cast<double>(next)) {
      double within = (rank - static_cast<double>(cumulative)) /
                      static_cast<double>(buckets[i]);
      return lower + within * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(
      Histogram::BucketUpperMicros(buckets.size() - 1));
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  *out += buf;
}

}  // namespace

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(
                                     &enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(
                                &enabled_)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : gauges_) {
    g->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) {
    for (auto& bucket : h->buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
    h->min_.store(UINT64_MAX, std::memory_order_relaxed);
    h->max_.store(0, std::memory_order_relaxed);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.buckets.resize(Histogram::kNumBuckets);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      hs.buckets[i] = h->buckets_[i].load(std::memory_order_relaxed);
    }
    hs.count = h->count();
    hs.sum_micros = h->sum_micros();
    uint64_t min = h->min_.load(std::memory_order_relaxed);
    hs.min_micros = min == UINT64_MAX ? 0 : min;
    hs.max_micros = h->max_.load(std::memory_order_relaxed);
    hs.p50_micros = EstimatePercentile(hs.buckets, hs.count, 0.50);
    hs.p95_micros = EstimatePercentile(hs.buckets, hs.count, 0.95);
    hs.p99_micros = EstimatePercentile(hs.buckets, hs.count, 0.99);
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::string MetricsRegistry::SnapshotJson() const {
  MetricsSnapshot snap = Snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += h.name;
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum_us\":";
    out += std::to_string(h.sum_micros);
    out += ",\"min_us\":";
    out += std::to_string(h.min_micros);
    out += ",\"max_us\":";
    out += std::to_string(h.max_micros);
    out += ",\"p50_us\":";
    AppendJsonNumber(&out, h.p50_micros);
    out += ",\"p95_us\":";
    AppendJsonNumber(&out, h.p95_micros);
    out += ",\"p99_us\":";
    AppendJsonNumber(&out, h.p99_micros);
    out += '}';
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::SnapshotText() const {
  MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  os << "counters:\n";
  for (const auto& [name, value] : snap.counters) {
    char line[128];
    std::snprintf(line, sizeof(line), "  %-32s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    os << line;
  }
  os << "gauges:\n";
  for (const auto& [name, value] : snap.gauges) {
    char line[128];
    std::snprintf(line, sizeof(line), "  %-32s %20lld\n", name.c_str(),
                  static_cast<long long>(value));
    os << line;
  }
  os << "histograms (microseconds):\n";
  for (const HistogramSnapshot& h : snap.histograms) {
    char line[192];
    std::snprintf(line, sizeof(line),
                  "  %-32s count=%-8llu p50=%-9.1f p95=%-9.1f p99=%-9.1f "
                  "min=%llu max=%llu\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.p50_micros, h.p95_micros, h.p99_micros,
                  static_cast<unsigned long long>(h.min_micros),
                  static_cast<unsigned long long>(h.max_micros));
    os << line;
  }
  return os.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

uint64_t ScopedLatencyTimer::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace provdb::observability
