#ifndef PROVDB_OBSERVABILITY_TRACE_H_
#define PROVDB_OBSERVABILITY_TRACE_H_

// Structured operation tracing: RAII spans written as JSON Lines to a
// file. Off by default and zero-cost when off — constructing a TraceSpan
// with the sink disabled is one relaxed atomic load, no clock read, no
// allocation (pinned by tests/observability/alloc_test.cc).
//
// One span per line:
//
//   {"name":"wal.sync","id":7,"parent":3,"thread":2,
//    "start_us":51234,"dur_us":812}
//
// `id` is unique per process (1-based); `parent` is the id of the span
// that was open on the same thread when this one started (0 = root);
// `thread` is a small per-process thread ordinal; `start_us` is measured
// from the process-local steady-clock epoch, so spans order and nest but
// carry no wall-clock time (deterministic workloads stay deterministic —
// the linter's R02 wall-clock ban applies to trace output too).
//
// Enable programmatically (TraceSink::Enable) or via the environment:
// setting PROVDB_TRACE=/path/to/out.jsonl before a binary that calls
// InitTraceFromEnv() (every example, bench harness, and provdb_cli does)
// streams spans there. Schema reference: docs/OBSERVABILITY.md.

#include <cstdint>
#include <string>

namespace provdb::observability {

/// Process-global JSONL span sink.
class TraceSink {
 public:
  /// Opens (truncates) `path` and starts accepting spans. Returns false
  /// when the file cannot be opened (the sink stays disabled).
  static bool Enable(const std::string& path);

  /// Flushes and closes the sink; spans become no-ops again. Spans still
  /// open when the sink closes are dropped, not written.
  static void Disable();

  static bool enabled();

  /// Enables the sink from the PROVDB_TRACE environment variable when it
  /// is set and non-empty. Returns true when tracing ended up enabled.
  static bool InitFromEnv();
};

/// Convenience spelling used at instrumentation call sites.
inline bool InitTraceFromEnv() { return TraceSink::InitFromEnv(); }

/// RAII span: records [construction, destruction) with automatic
/// parenting — the innermost live span on this thread becomes the parent.
/// `name` must outlive the span (string literals at every call site).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Span id, 0 when the sink was disabled at construction.
  uint64_t id() const { return id_; }

 private:
  const char* name_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_micros_ = 0;
};

}  // namespace provdb::observability

#endif  // PROVDB_OBSERVABILITY_TRACE_H_
