#ifndef PROVDB_OBSERVABILITY_METRICS_H_
#define PROVDB_OBSERVABILITY_METRICS_H_

// Always-on instrumentation for the hot paths the paper's evaluation (§5)
// measures: checksum generation, subtree hashing, WAL persistence, and
// verification. Design goals, in order:
//
//   1. lock-cheap recording — after an instrument is registered (once, at
//      component construction), Add/Set/Record touch only relaxed atomics;
//      no mutex, no allocation, no syscalls on the hot path,
//   2. snapshot-on-read — aggregation (percentiles, JSON) happens only
//      when a snapshot is taken, never while recording, and
//   3. cheap to disable — `MetricsRegistry::set_enabled(false)` turns
//      every recording call into a single relaxed load + branch, and the
//      instrumented code paths allocate nothing either way (pinned by
//      tests/observability/alloc_test.cc).
//
// This library sits below src/common/ (stdlib-only, no provdb link deps;
// the one include, common/thread_annotations.h, is a dependency-free
// header) so even ThreadPool can be instrumented without a cycle. The
// metric-name inventory is documented in docs/OBSERVABILITY.md; the CI
// docs stage cross-checks that every name registered here-in-src/ appears
// there and vice versa (tools/check_metrics_docs.sh).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace provdb::observability {

class MetricsRegistry;

/// Monotonic event count. `value()` is exact even under concurrent Adds.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) {
    if (!*enabled_) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, cache size).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!*enabled_) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t n) {
    if (!*enabled_) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Sub(int64_t n) { Add(-n); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram in microseconds. Bucket upper bounds
/// are the powers of two 1us, 2us, 4us, ... 2^25us (~33.6s) plus an
/// overflow bucket, so `Record` is a bit-width computation and one relaxed
/// increment. Percentiles are estimated at snapshot time by linear
/// interpolation inside the selected bucket (documented error: within one
/// power-of-two bucket of the true quantile).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 27;  // 26 finite + overflow

  /// Upper bound (inclusive) of finite bucket `i`: 2^i microseconds.
  /// Bucket kNumBuckets-1 is the +inf overflow bucket.
  static uint64_t BucketUpperMicros(size_t i) { return uint64_t{1} << i; }

  void Record(uint64_t micros) {
    if (!*enabled_) return;
    buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(micros, std::memory_order_relaxed);
    AtomicMin(&min_, micros);
    AtomicMax(&max_, micros);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const { return sum_.load(std::memory_order_relaxed); }

  bool enabled() const { return *enabled_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  static size_t BucketIndex(uint64_t micros) {
    size_t i = 0;
    while (i + 1 < kNumBuckets && micros > BucketUpperMicros(i)) ++i;
    return i;
  }

  static void AtomicMin(std::atomic<uint64_t>* slot, uint64_t v) {
    uint64_t cur = slot->load(std::memory_order_relaxed);
    while (v < cur &&
           !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>* slot, uint64_t v) {
    uint64_t cur = slot->load(std::memory_order_relaxed);
    while (v > cur &&
           !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time copy of one histogram, with percentiles precomputed.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum_micros = 0;
  uint64_t min_micros = 0;
  uint64_t max_micros = 0;
  double p50_micros = 0;
  double p95_micros = 0;
  double p99_micros = 0;
  std::vector<uint64_t> buckets;  // kNumBuckets entries
};

/// Point-in-time copy of a whole registry, sorted by instrument name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Owns named instruments. Registration (`counter`/`gauge`/`histogram`)
/// takes a mutex and may allocate — components do it once, at
/// construction, and keep the returned pointer, which stays valid for the
/// registry's lifetime. Requesting an existing name returns the same
/// instrument, so independent components share e.g. `wal.appends`.
///
/// Thread-safety: registration and snapshots lock `mu_`; recording through
/// the returned pointers is lock-free (relaxed atomics). A snapshot taken
/// concurrently with recording sees each instrument's values at slightly
/// different instants — fine for monitoring, documented in
/// DESIGN.md §9.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// When disabled, every Add/Set/Record becomes a relaxed load + early
  /// return. Registration still works (instruments simply stay at zero).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes every instrument (e.g. between bench phases). Not atomic with
  /// respect to concurrent recording.
  void Reset();

  MetricsSnapshot Snapshot() const;

  /// Snapshot rendered as one JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{"name":{...}}}
  /// — the schema embedded in every bench_* run and emitted by
  /// `provdb stats --json` (full schema in docs/OBSERVABILITY.md).
  std::string SnapshotJson() const;

  /// Snapshot rendered as aligned human-readable text for `provdb stats`.
  std::string SnapshotText() const;

  /// The process-wide registry every provdb component records into.
  /// Leaked on purpose so instruments outlive static destructors.
  static MetricsRegistry& Global();

 private:
  std::atomic<bool> enabled_{true};
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PROVDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PROVDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PROVDB_GUARDED_BY(mu_);
};

/// Shorthand used at instrumentation sites.
inline MetricsRegistry& GlobalMetrics() { return MetricsRegistry::Global(); }

/// RAII wall-clock timer recording its scope's duration into a histogram
/// (microseconds, steady clock). When the owning registry is disabled the
/// constructor skips even the clock read. Null histogram = inert timer,
/// so call sites need no branches.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist)
      : hist_(hist != nullptr && hist->enabled() ? hist : nullptr) {
    if (hist_ != nullptr) start_micros_ = NowMicros();
  }
  ~ScopedLatencyTimer() {
    if (hist_ != nullptr) hist_->Record(NowMicros() - start_micros_);
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  /// Monotonic microseconds since an arbitrary process-local epoch.
  static uint64_t NowMicros();

 private:
  Histogram* hist_;
  uint64_t start_micros_ = 0;
};

}  // namespace provdb::observability

#endif  // PROVDB_OBSERVABILITY_METRICS_H_
