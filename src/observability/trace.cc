#include "observability/trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/thread_annotations.h"
#include "observability/metrics.h"

namespace provdb::observability {
namespace {

// Sink state. The FILE* is guarded by g_mu; g_enabled is read lock-free
// on the span fast path. Trace output is diagnostic, not durable state —
// it is NOT part of the provenance persistence contract, so it writes
// through stdio rather than storage::Env (which would also invert the
// layering: storage itself is instrumented by this library).
std::atomic<bool> g_enabled{false};
Mutex g_mu;
std::FILE* g_file PROVDB_GUARDED_BY(g_mu) = nullptr;

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_thread_ordinal{1};

thread_local uint64_t t_current_span = 0;

uint64_t ThreadOrdinal() {
  thread_local uint64_t ordinal =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Steady-clock reading captured when the sink is enabled — the
/// "start_us" origin, so span timestamps are small offsets instead of raw
/// monotonic-clock values. Set before g_enabled flips, so no span can
/// start earlier than the epoch.
uint64_t g_epoch_micros PROVDB_GUARDED_BY(g_mu) = 0;

}  // namespace

bool TraceSink::Enable(const std::string& path) {
  MutexLock lock(&g_mu);
  if (g_file != nullptr) {
    std::fclose(g_file);
    g_file = nullptr;
    g_enabled.store(false, std::memory_order_release);
  }
  g_file = std::fopen(path.c_str(), "wb");  // lint:allow raw-file-io
  if (g_file == nullptr) return false;
  g_epoch_micros = ScopedLatencyTimer::NowMicros();
  g_enabled.store(true, std::memory_order_release);
  return true;
}

void TraceSink::Disable() {
  MutexLock lock(&g_mu);
  g_enabled.store(false, std::memory_order_release);
  if (g_file != nullptr) {
    std::fflush(g_file);
    std::fclose(g_file);
    g_file = nullptr;
  }
}

bool TraceSink::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

bool TraceSink::InitFromEnv() {
  const char* path = std::getenv("PROVDB_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  return Enable(path);
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  start_micros_ = ScopedLatencyTimer::NowMicros();
}

TraceSpan::~TraceSpan() {
  if (id_ == 0) return;
  t_current_span = parent_;
  uint64_t duration = ScopedLatencyTimer::NowMicros() - start_micros_;
  MutexLock lock(&g_mu);
  if (g_file == nullptr) return;  // sink closed while the span was open
  std::fprintf(g_file,
               "{\"name\":\"%s\",\"id\":%llu,\"parent\":%llu,"
               "\"thread\":%llu,\"start_us\":%llu,\"dur_us\":%llu}\n",
               name_, static_cast<unsigned long long>(id_),
               static_cast<unsigned long long>(parent_),
               static_cast<unsigned long long>(ThreadOrdinal()),
               static_cast<unsigned long long>(start_micros_ -
                                               g_epoch_micros),
               static_cast<unsigned long long>(duration));
}

}  // namespace provdb::observability
