#ifndef PROVDB_COMMON_THREAD_POOL_H_
#define PROVDB_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.h"
#include "observability/metrics.h"

namespace provdb {

/// How much parallelism a verification/audit component may use. The
/// default (one thread) is bit-for-bit equivalent to the historical
/// sequential code path: no pool is created, no tasks are spawned, and
/// every loop runs inline in the caller's thread.
struct ParallelismConfig {
  int num_threads = 1;

  bool sequential() const { return num_threads <= 1; }

  /// One thread per hardware core (at least 1).
  static ParallelismConfig Hardware() {
    unsigned n = std::thread::hardware_concurrency();
    return ParallelismConfig{n == 0 ? 1 : static_cast<int>(n)};
  }
};

/// A fixed-size pool of worker threads executing submitted tasks FIFO.
///
/// `Submit` packages any nullary callable and returns a `std::future` for
/// its result; exceptions thrown by the task are captured and rethrown
/// from `future::get()`. `Shutdown` (also run by the destructor) is
/// graceful: every task already queued is executed before the workers
/// exit. Tasks submitted after shutdown began run inline in the
/// submitting thread, so their futures are still fulfilled.
///
/// Tasks must not block on futures of tasks queued on the *same* pool
/// (no nested fan-out): with all workers waiting, the queued subtasks
/// would never be picked up.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn)
      -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(&mu_);
      if (!stopping_) {
        queue_.emplace_back([task] { (*task)(); });
        queue_depth_->Add(1);
        wake_.Signal();
        return future;
      }
    }
    // Pool is draining or drained: run inline so the future is usable.
    (*task)();
    return future;
  }

  /// Executes every queued task, then joins all workers. Idempotent.
  void Shutdown();

  /// Tasks completed so far (drained from the queue and executed by a
  /// worker; inline post-shutdown executions are not counted).
  uint64_t tasks_executed() const;

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar wake_{&mu_};
  std::deque<std::function<void()>> queue_ PROVDB_GUARDED_BY(mu_);
  // Written only by the constructor and joined by Shutdown — the spawn
  // and the join order against every worker, so no lock guards the vector
  // itself.
  std::vector<std::thread> workers_;
  uint64_t executed_ PROVDB_GUARDED_BY(mu_) = 0;
  bool stopping_ PROVDB_GUARDED_BY(mu_) = false;

  // Pool observability (docs/OBSERVABILITY.md): registered once at
  // construction; shared across every pool in the process.
  observability::Counter* tasks_total_;
  observability::Gauge* queue_depth_;
  observability::Histogram* task_latency_;
};

}  // namespace provdb

#endif  // PROVDB_COMMON_THREAD_POOL_H_
