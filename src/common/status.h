#ifndef PROVDB_COMMON_STATUS_H_
#define PROVDB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace provdb {

/// Machine-readable classification of an error. `kOk` means success.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kCorruption = 6,
  kIoError = 7,
  kVerificationFailed = 8,
  kInternal = 9,
  kUnimplemented = 10,
  /// Transient overload: the request was shed by admission control and
  /// may be retried later. Distinct from kFailedPrecondition (the caller
  /// did nothing wrong) and from kIoError (nothing is broken).
  kUnavailable = 11,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight error-or-success value used across the library instead of
/// exceptions. A default-constructed Status is OK and stores no message.
///
/// Typical use:
///
///   Status s = db.Update(id, value);
///   if (!s.ok()) return s;
///
/// The class is [[nodiscard]]: a Status-returning call whose result is
/// ignored is a compile warning (and an error under PROVDB_WERROR). An
/// unexamined Status is an undetected failure — in this codebase often an
/// undetected verification failure, i.e. undetected tampering.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. Passing `kOk`
  /// with a message is allowed but the message is ignored by `ok()`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors for the common codes.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status VerificationFailed(std::string msg) {
    return Status(StatusCode::kVerificationFailed, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define PROVDB_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::provdb::Status provdb_status_tmp_ = (expr);   \
    if (!provdb_status_tmp_.ok()) {                 \
      return provdb_status_tmp_;                    \
    }                                               \
  } while (false)

}  // namespace provdb

#endif  // PROVDB_COMMON_STATUS_H_
