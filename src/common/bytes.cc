#include "common/bytes.h"

namespace provdb {

void AppendFixed32(Bytes* dst, uint32_t v) {
  dst->push_back(static_cast<uint8_t>(v));
  dst->push_back(static_cast<uint8_t>(v >> 8));
  dst->push_back(static_cast<uint8_t>(v >> 16));
  dst->push_back(static_cast<uint8_t>(v >> 24));
}

void AppendFixed64(Bytes* dst, uint64_t v) {
  AppendFixed32(dst, static_cast<uint32_t>(v));
  AppendFixed32(dst, static_cast<uint32_t>(v >> 32));
}

uint32_t ReadFixed32(ByteView src, size_t offset) {
  return static_cast<uint32_t>(src[offset]) |
         static_cast<uint32_t>(src[offset + 1]) << 8 |
         static_cast<uint32_t>(src[offset + 2]) << 16 |
         static_cast<uint32_t>(src[offset + 3]) << 24;
}

uint64_t ReadFixed64(ByteView src, size_t offset) {
  return static_cast<uint64_t>(ReadFixed32(src, offset)) |
         static_cast<uint64_t>(ReadFixed32(src, offset + 4)) << 32;
}

bool ConstantTimeEqual(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace provdb
