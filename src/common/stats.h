#ifndef PROVDB_COMMON_STATS_H_
#define PROVDB_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace provdb {

/// Two-sided 95% critical value of Student's t-distribution with `df`
/// degrees of freedom. Exact table values for df <= 29; the normal
/// approximation's z = 1.96 beyond that (the t quantile is within 2% of z
/// from df = 30 on). Returns 0 for df = 0 (no interval is defined).
inline double StudentT95(size_t df) {
  static constexpr double kT95[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045};
  if (df == 0) return 0.0;
  if (df <= sizeof(kT95) / sizeof(kT95[0])) return kT95[df - 1];
  return 1.96;
}

/// Aggregates repeated measurements and reports mean plus a 95% confidence
/// interval, matching the paper's "average across 100 runs, including 95%
/// confidence intervals" reporting style.
class RunningStats {
 public:
  /// Adds one measurement.
  void Add(double x) {
    // Welford's online algorithm: numerically stable single pass.
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Half-width of the 95% confidence interval for the mean. Uses the
  /// Student-t critical value for the actual sample size — the normal
  /// approximation (z = 1.96) is overconfident for short benchmark runs
  /// (at n = 5 the true factor is 2.776, i.e. 42% wider) and only kicks in
  /// from n = 30 where the two agree to within 2%.
  double ci95_half_width() const {
    if (n_ < 2) return 0.0;
    return StudentT95(n_ - 1) * stddev() / std::sqrt(static_cast<double>(n_));
  }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace provdb

#endif  // PROVDB_COMMON_STATS_H_
