#ifndef PROVDB_COMMON_STATS_H_
#define PROVDB_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace provdb {

/// Aggregates repeated measurements and reports mean plus a 95% confidence
/// interval, matching the paper's "average across 100 runs, including 95%
/// confidence intervals" reporting style.
class RunningStats {
 public:
  /// Adds one measurement.
  void Add(double x) {
    // Welford's online algorithm: numerically stable single pass.
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Half-width of the 95% confidence interval for the mean, using the
  /// normal approximation (z = 1.96); adequate for the paper's 100 runs.
  double ci95_half_width() const {
    if (n_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
  }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace provdb

#endif  // PROVDB_COMMON_STATS_H_
