#ifndef PROVDB_COMMON_THREAD_ANNOTATIONS_H_
#define PROVDB_COMMON_THREAD_ANNOTATIONS_H_

// Machine-checked lock discipline (DESIGN.md §7).
//
// Two things live here, and only here:
//
//   1. the PROVDB_* thread-safety macros, which compile to Clang's
//      `-Wthread-safety` attributes under Clang and to nothing under
//      every other compiler (zero release-build impact), and
//   2. the annotated lock vocabulary the rest of src/ is required to
//      use: `Mutex`, the RAII guard `MutexLock`, and `CondVar`.
//
// The standard-library types cannot participate in the analysis because
// libstdc++ ships them unannotated, so every mutex in src/ is a
// provdb::Mutex and every acquisition is a scoped MutexLock; lint rules
// R08 (unannotated-mutex) and R10 (naked-lock) keep that true even on
// GCC-only machines, and the `tools/ci.sh thread-safety` stage proves
// the annotations under `clang++ -Wthread-safety -Wthread-safety-beta`
// with the warnings promoted to errors.
//
// Discipline for new code:
//
//   * every member a mutex protects is declared PROVDB_GUARDED_BY(mu_);
//   * a function that needs the lock already held is a private
//     `FooLocked()` carrying PROVDB_REQUIRES(mu_), and its public
//     wrapper takes the MutexLock — never an implicit mid-call-chain
//     acquisition the analysis cannot see;
//   * blocking I/O (Env Sync/Append/Rename...) stays out of lock scopes
//     (lint rule R09) unless the component *is* the I/O layer.
//
// This header is dependency-free (standard library only) so even the
// observability layer, which sits below src/common/, may include it.

#include <condition_variable>
#include <mutex>

// Raw attribute spelling: present under Clang, erased elsewhere.
#if defined(__clang__)
#define PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op on GCC/MSVC
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define PROVDB_LOCKABLE PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(capability("mutex"))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define PROVDB_SCOPED_LOCKABLE \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// The annotated member may only be read or written while holding `x`.
#define PROVDB_GUARDED_BY(x) PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// The pointee of the annotated pointer is protected by `x` (the pointer
/// itself is not).
#define PROVDB_PT_GUARDED_BY(x) \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities
/// exclusively — the `FooLocked()` idiom's contract.
#define PROVDB_REQUIRES(...) \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// As PROVDB_REQUIRES, for shared (reader) access.
#define PROVDB_REQUIRES_SHARED(...) \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and does not release
/// them before returning.
#define PROVDB_ACQUIRE(...) \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define PROVDB_RELEASE(...) \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (deadlock guard for
/// public entry points that take the lock themselves).
#define PROVDB_EXCLUDES(...) \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations, for when the codebase grows a second
/// mutex that may nest with the first.
#define PROVDB_ACQUIRED_BEFORE(...) \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define PROVDB_ACQUIRED_AFTER(...) \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

/// The function returns a reference to the capability guarding its
/// result (accessor for an embedded mutex).
#define PROVDB_RETURN_CAPABILITY(x) \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Runtime assertion that the capability is held; informs the analysis
/// without acquiring anything.
#define PROVDB_ASSERT_CAPABILITY(...) \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(__VA_ARGS__))

/// Escape hatch — disables the analysis for one function. Every use
/// needs a comment justifying why the contract cannot be expressed.
#define PROVDB_NO_THREAD_SAFETY_ANALYSIS \
  PROVDB_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace provdb {

/// std::mutex wrapped as an annotated capability. Locking is normally
/// done through MutexLock; Lock/Unlock exist for the guard itself and
/// for the rare annotated manual site (none today — lint rule R10).
class PROVDB_LOCKABLE Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PROVDB_ACQUIRE() { inner_.lock(); }
  void Unlock() PROVDB_RELEASE() { inner_.unlock(); }

  /// Documents (to the analysis) that the lock is held at this point,
  /// e.g. inside a callback invoked under the lock. No runtime effect.
  void AssertHeld() PROVDB_ASSERT_CAPABILITY() {}

 private:
  friend class CondVar;
  std::mutex inner_;
};

/// RAII guard: acquires `mu` for its scope. The only sanctioned way to
/// lock a Mutex outside this header (lint rule R10).
class PROVDB_SCOPED_LOCKABLE MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PROVDB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PROVDB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to one Mutex. Wait() must be called with the
/// mutex held (callers hold it via MutexLock, so the analysis sees the
/// guarded state accessed under the lock across the wait loop); like
/// LevelDB's port::CondVar, the wait itself is below the analysis —
/// std::condition_variable carries no annotations to check against.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the bound mutex, blocks, and re-acquires it
  /// before returning. Spurious wakeups happen: always wait in a
  /// `while (!predicate)` loop.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->inner_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

}  // namespace provdb

#endif  // PROVDB_COMMON_THREAD_ANNOTATIONS_H_
