#include "common/varint.h"

namespace provdb {

void AppendVarint64(Bytes* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

void AppendVarintSigned64(Bytes* dst, int64_t v) {
  // Zigzag: maps small-magnitude negatives to small unsigned codes.
  uint64_t u = (static_cast<uint64_t>(v) << 1) ^
               static_cast<uint64_t>(v >> 63);
  AppendVarint64(dst, u);
}

void AppendLengthPrefixed(Bytes* dst, ByteView data) {
  AppendVarint64(dst, data.size());
  AppendBytes(dst, data);
}

Result<uint64_t> VarintReader::ReadVarint64() {
  uint64_t v = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    uint8_t b = data_[pos_++];
    if (shift >= 63 && (b & 0x7F) > 1) {
      return Status::Corruption("varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      // Canonical-form check: AppendVarint64 never emits a final byte of
      // zero except for the single-byte encoding of 0, so an overlong
      // encoding (e.g. 0x80 0x00 for 0) is not a value the serializer
      // can produce. Accepting it would break the encode/decode
      // bijection the tamper matrix and the wire protocol rely on: two
      // distinct byte strings would decode to the same record.
      if (b == 0 && shift > 0) {
        return Status::Corruption("non-canonical varint (overlong encoding)");
      }
      return v;
    }
    shift += 7;
    if (shift > 63) {
      return Status::Corruption("varint too long");
    }
  }
  return Status::Corruption("truncated varint");
}

Result<int64_t> VarintReader::ReadVarintSigned64() {
  PROVDB_ASSIGN_OR_RETURN(uint64_t u, ReadVarint64());
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

Result<Bytes> VarintReader::ReadLengthPrefixed() {
  PROVDB_ASSIGN_OR_RETURN(uint64_t len, ReadVarint64());
  if (len > remaining()) {
    return Status::Corruption("length-prefixed field exceeds buffer");
  }
  return ReadRaw(static_cast<size_t>(len));
}

Result<Bytes> VarintReader::ReadRaw(size_t n) {
  if (n > remaining()) {
    return Status::Corruption("truncated raw field");
  }
  Bytes out(data_.data() + pos_, data_.data() + pos_ + n);
  pos_ += n;
  return out;
}

}  // namespace provdb
