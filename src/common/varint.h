#ifndef PROVDB_COMMON_VARINT_H_
#define PROVDB_COMMON_VARINT_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace provdb {

/// Appends `v` as a LEB128-style varint (7 bits per byte, MSB = continue).
void AppendVarint64(Bytes* dst, uint64_t v);

/// Appends a signed value using zigzag encoding.
void AppendVarintSigned64(Bytes* dst, int64_t v);

/// Appends a length-prefixed byte string (varint length, then the bytes).
void AppendLengthPrefixed(Bytes* dst, ByteView data);

/// Sequential decoder over a byte view. All getters fail with
/// `kCorruption` on truncated or malformed input.
class VarintReader {
 public:
  explicit VarintReader(ByteView data) : data_(data), pos_(0) {}

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool done() const { return pos_ >= data_.size(); }

  Result<uint64_t> ReadVarint64();
  Result<int64_t> ReadVarintSigned64();
  /// Reads a varint length followed by that many bytes.
  Result<Bytes> ReadLengthPrefixed();
  /// Reads exactly `n` raw bytes.
  Result<Bytes> ReadRaw(size_t n);

 private:
  ByteView data_;
  size_t pos_;
};

}  // namespace provdb

#endif  // PROVDB_COMMON_VARINT_H_
