#ifndef PROVDB_COMMON_HEX_H_
#define PROVDB_COMMON_HEX_H_

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/result.h"

namespace provdb {

/// Encodes `data` as lowercase hexadecimal ("deadbeef").
std::string HexEncode(ByteView data);

/// Decodes a hexadecimal string (case-insensitive). Fails on odd length or
/// non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

}  // namespace provdb

#endif  // PROVDB_COMMON_HEX_H_
