#ifndef PROVDB_COMMON_BYTES_H_
#define PROVDB_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace provdb {

/// Owning byte buffer used throughout the library for hashes, signatures,
/// serialized records, and wire frames.
using Bytes = std::vector<uint8_t>;

/// Non-owning read-only view over a byte range (a minimal Slice).
class ByteView {
 public:
  ByteView() : data_(nullptr), size_(0) {}
  ByteView(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  ByteView(const Bytes& b)  // NOLINT(google-explicit-constructor)
      : data_(b.data()), size_(b.size()) {}
  ByteView(std::string_view s)  // NOLINT(google-explicit-constructor)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Returns the sub-view [offset, offset+count); clamps to the view's end.
  ByteView subview(size_t offset, size_t count = SIZE_MAX) const {
    if (offset > size_) offset = size_;
    size_t n = size_ - offset;
    if (count < n) n = count;
    return ByteView(data_ + offset, n);
  }

  /// Copies the viewed bytes into an owning buffer.
  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }

  /// Reinterprets the viewed bytes as a string.
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  bool operator==(const ByteView& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

/// Appends `src` to `dst`.
inline void AppendBytes(Bytes* dst, ByteView src) {
  dst->insert(dst->end(), src.data(), src.data() + src.size());
}

/// Appends the UTF-8 bytes of `s` to `dst`.
inline void AppendString(Bytes* dst, std::string_view s) {
  AppendBytes(dst, ByteView(s));
}

/// Appends a single byte.
inline void AppendByte(Bytes* dst, uint8_t b) { dst->push_back(b); }

/// Appends `v` in little-endian order (fixed 4 bytes).
void AppendFixed32(Bytes* dst, uint32_t v);

/// Appends `v` in little-endian order (fixed 8 bytes).
void AppendFixed64(Bytes* dst, uint64_t v);

/// Reads a little-endian uint32 at `offset`; caller guarantees bounds.
uint32_t ReadFixed32(ByteView src, size_t offset);

/// Reads a little-endian uint64 at `offset`; caller guarantees bounds.
uint64_t ReadFixed64(ByteView src, size_t offset);

/// Constant-time byte-equality; use when comparing secrets, MACs, and
/// digests. Early-exit comparison (memcmp) leaks how many leading bytes of
/// an attacker-supplied value match a secret-derived one — the classic
/// remote timing oracle against MAC/signature verification. This is the
/// designated helper of lint rule R04 (`ct-memcmp`): raw `memcmp` is
/// banned in `src/crypto/` and `src/provenance/`; equality on digest/MAC
/// bytes must route through here.
bool ConstantTimeEqual(ByteView a, ByteView b);

}  // namespace provdb

#endif  // PROVDB_COMMON_BYTES_H_
