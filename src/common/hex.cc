#include "common/hex.h"

namespace provdb {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string HexEncode(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (size_t i = 0; i < data.size(); ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0F]);
  }
  return out;
}

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace provdb
