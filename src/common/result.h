#ifndef PROVDB_COMMON_RESULT_H_
#define PROVDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace provdb {

/// Holds either a value of type `T` or a non-OK Status explaining why the
/// value is absent. Mirrors absl::StatusOr / arrow::Result.
///
///   Result<int> r = ParsePort(text);
///   if (!r.ok()) return r.status();
///   int port = r.value();
///
/// Like Status, the class is [[nodiscard]]: dropping a Result on the floor
/// silently discards both the value and the error that explains its
/// absence.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` when this result is an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a `Result<T>` expression to `lhs`, returning the
/// status from the enclosing function on error.
#define PROVDB_CONCAT_INNER_(a, b) a##b
#define PROVDB_CONCAT_(a, b) PROVDB_CONCAT_INNER_(a, b)
#define PROVDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()
#define PROVDB_ASSIGN_OR_RETURN(lhs, expr)                                  \
  PROVDB_ASSIGN_OR_RETURN_IMPL_(PROVDB_CONCAT_(provdb_result_, __LINE__),   \
                                lhs, expr)

}  // namespace provdb

#endif  // PROVDB_COMMON_RESULT_H_
