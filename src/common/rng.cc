#include "common/rng.h"

#include <cmath>

namespace provdb {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(NextUint64());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

void Rng::NextBytes(Bytes* out, size_t n) {
  out->clear();
  out->reserve(n);
  while (out->size() < n) {
    uint64_t r = NextUint64();
    for (int i = 0; i < 8 && out->size() < n; ++i) {
      out->push_back(static_cast<uint8_t>(r >> (8 * i)));
    }
  }
}

std::string Rng::NextString(size_t n) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('a' + NextBelow(26)));
  }
  return out;
}

}  // namespace provdb
