#ifndef PROVDB_COMMON_STOPWATCH_H_
#define PROVDB_COMMON_STOPWATCH_H_

#include <chrono>

namespace provdb {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction / last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace provdb

#endif  // PROVDB_COMMON_STOPWATCH_H_
