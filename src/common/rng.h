#ifndef PROVDB_COMMON_RNG_H_
#define PROVDB_COMMON_RNG_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace provdb {

/// Deterministic, fast, non-cryptographic PRNG (xoshiro256**), seeded with
/// SplitMix64. Used by workload generators and tests so every run is
/// reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform random 64-bit value.
  uint64_t NextUint64();

  /// Uniform value in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so results are unbiased.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Fills `out` with `n` random bytes.
  void NextBytes(Bytes* out, size_t n);

  /// Random lowercase ASCII string of length `n`.
  std::string NextString(size_t n);

 private:
  uint64_t state_[4];
};

}  // namespace provdb

#endif  // PROVDB_COMMON_RNG_H_
