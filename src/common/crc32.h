#ifndef PROVDB_COMMON_CRC32_H_
#define PROVDB_COMMON_CRC32_H_

#include <cstdint>

#include "common/bytes.h"

namespace provdb {

/// Computes the CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of
/// `data`. Used to frame records in the on-disk provenance log.
uint32_t Crc32(ByteView data);

/// Incrementally extends a CRC computed by Crc32 / Crc32Extend.
uint32_t Crc32Extend(uint32_t crc, ByteView data);

}  // namespace provdb

#endif  // PROVDB_COMMON_CRC32_H_
