#ifndef PROVDB_COMMON_EPOCH_H_
#define PROVDB_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "observability/metrics.h"

namespace provdb {

/// Base class for anything reclaimed through an EpochDomain. Retirement
/// is intrusive (the two fields below), so retiring never allocates —
/// a hard requirement for the ingest write path, which retires replaced
/// store versions inside its group-commit critical section.
class EpochRetired {
 public:
  EpochRetired() = default;
  virtual ~EpochRetired() = default;

  EpochRetired(const EpochRetired&) = delete;
  EpochRetired& operator=(const EpochRetired&) = delete;

 private:
  friend class EpochDomain;
  EpochRetired* epoch_next_ = nullptr;
  uint64_t epoch_stamp_ = 0;
};

/// Classic epoch-based reclamation (EBR), specialized for this codebase's
/// single-writer / many-reader stores:
///
///   * Readers Pin() the domain (claiming one of a fixed set of
///     cache-line-aligned epoch slots), traverse immutable copy-on-write
///     structures, and unpin. Pin/unpin are lock-free, allocation-free,
///     and safe from any thread — including ThreadPool workers; a Guard
///     may be held by one thread while others (e.g. a verify fan-out on
///     the shared pool) traverse under its protection, because protection
///     attaches to the pinned slot, not to the pinning thread.
///
///   * The writer — externally serialized, e.g. by the ingest pipeline's
///     mutex — unlinks nodes from the published structure, Retire()s
///     them (stamping the current epoch), Advance()s the global epoch at
///     each publish point, and Collect()s whatever no pinned reader can
///     still reach.
///
/// Reclamation rule: a node retired at stamp S was unlinked from the
/// published structure while the global epoch was S, and the publish of
/// its replacement precedes the advance to S+1. A reader that pinned at
/// epoch e synchronizes with the advance that set the global to e, so it
/// observes every structure published before that advance — it can only
/// reach nodes with stamp >= e. Collect() therefore frees exactly the
/// nodes with stamp < min(every pinned epoch, the global epoch); the
/// second bound covers not-yet-visible publishes within the current
/// epoch. All slot and global-epoch accesses are seq_cst, which is what
/// makes the "scan saw the slot empty" / "reader re-checks the global
/// after claiming" race resolve safely (see epoch.cc).
class EpochDomain {
 public:
  /// Upper bound on simultaneously pinned readers. Pin() spins (yielding)
  /// when all slots are busy; with snapshots held briefly per audit pass
  /// this bound is never approached in practice.
  static constexpr size_t kMaxSlots = 64;

  /// RAII pin. Default-constructed guards are unpinned no-ops, so they
  /// can be members of movable snapshot objects.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept { *this = std::move(other); }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        domain_ = other.domain_;
        slot_ = other.slot_;
        epoch_ = other.epoch_;
        other.domain_ = nullptr;
      }
      return *this;
    }
    ~Guard() { Release(); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    bool pinned() const { return domain_ != nullptr; }
    /// The epoch this guard is pinned at (0 when unpinned).
    uint64_t epoch() const { return domain_ != nullptr ? epoch_ : 0; }

   private:
    friend class EpochDomain;
    Guard(EpochDomain* domain, size_t slot, uint64_t epoch)
        : domain_(domain), slot_(slot), epoch_(epoch) {}
    void Release();

    EpochDomain* domain_ = nullptr;
    size_t slot_ = 0;
    uint64_t epoch_ = 0;
  };

  EpochDomain();
  /// Frees every still-retired node. No reader may be pinned and no
  /// retired node may still be reachable when the domain dies.
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Pins the calling context at the current epoch. Lock-free and
  /// allocation-free; spins only if all kMaxSlots slots are occupied.
  Guard Pin();

  // --- Writer side. Retire/Advance/Collect must be externally
  // --- serialized against each other (the ingest pipeline calls all
  // --- three under its own mutex); they never block readers.

  /// Takes ownership of `node` (must be unlinked from every published
  /// structure already) and stamps it with the current epoch. Never
  /// allocates.
  void Retire(EpochRetired* node);

  /// Starts a new epoch; called at each publish point (after the new
  /// structure version is visible). Returns the new epoch. Never
  /// allocates.
  uint64_t Advance();

  /// Frees every retired node no pinned reader can still reach (stamp <
  /// min(pinned epochs, global epoch)). Returns how many were freed.
  size_t Collect();

  uint64_t current_epoch() const {
    return global_.load(std::memory_order_seq_cst);
  }

  /// Retired-but-not-yet-freed nodes (writer-side view). The soak test
  /// asserts this drains to zero at quiescence.
  uint64_t retired_pending() const { return retired_count_; }

  /// Smallest epoch any reader is pinned at, or 0 when none are pinned.
  uint64_t min_pinned_epoch() const;

 private:
  struct alignas(64) Slot {
    /// 0 = free; otherwise the epoch the occupying reader is pinned at.
    std::atomic<uint64_t> epoch{0};
  };

  std::atomic<uint64_t> global_{1};
  Slot slots_[kMaxSlots];

  // Retired list — writer-side only, intrusive, never allocates.
  EpochRetired* retired_head_ = nullptr;
  uint64_t retired_count_ = 0;

  // Observability (docs/OBSERVABILITY.md): shared, registry-owned
  // instruments, so every domain in the process feeds the same series.
  observability::Gauge* active_readers_;
  observability::Counter* retired_metric_;
  observability::Counter* reclaimed_metric_;
  observability::Gauge* oldest_pinned_age_;
};

}  // namespace provdb

#endif  // PROVDB_COMMON_EPOCH_H_
