#ifndef PROVDB_COMMON_HASHMIX_H_
#define PROVDB_COMMON_HASHMIX_H_

#include <cstdint>

namespace provdb {

/// SplitMix64 finalizer: a fast, high-quality 64-bit bit mixer.
///
/// The sharded ingest pipeline routes every object to a shard as
/// `Mix64(object_id) % num_shards`, so this function is part of the
/// on-disk contract: a shard's WAL directory holds exactly the chains
/// whose ids mix into it. Changing the mixing constants (or the modulus
/// convention) would silently re-home objects away from their recovered
/// chain tails on reopen — treat this as frozen, like a wire format.
inline constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace provdb

#endif  // PROVDB_COMMON_HASHMIX_H_
