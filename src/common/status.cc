#include "common/status.h"

namespace provdb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kVerificationFailed:
      return "VerificationFailed";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace provdb
