#include "common/epoch.h"

#include <thread>

namespace provdb {

EpochDomain::EpochDomain()
    : active_readers_(
          observability::GlobalMetrics().gauge("epoch.active_readers")),
      retired_metric_(observability::GlobalMetrics().counter("epoch.retired")),
      reclaimed_metric_(
          observability::GlobalMetrics().counter("epoch.reclaimed")),
      oldest_pinned_age_(
          observability::GlobalMetrics().gauge("epoch.oldest_pinned_age")) {}

EpochDomain::~EpochDomain() {
  // Destruction is a quiescent point by contract: no pinned readers, no
  // reachable retired nodes. Drain unconditionally.
  EpochRetired* node = retired_head_;
  while (node != nullptr) {
    EpochRetired* next = node->epoch_next_;
    delete node;
    node = next;
  }
  retired_head_ = nullptr;
  retired_count_ = 0;
}

EpochDomain::Guard EpochDomain::Pin() {
  for (;;) {
    for (size_t i = 0; i < kMaxSlots; ++i) {
      if (slots_[i].epoch.load(std::memory_order_relaxed) != 0) {
        continue;  // occupied; cheap pre-check before the CAS
      }
      uint64_t e = global_.load(std::memory_order_seq_cst);
      uint64_t expected = 0;
      if (!slots_[i].epoch.compare_exchange_strong(
              expected, e, std::memory_order_seq_cst)) {
        continue;  // lost the slot race
      }
      // Store-then-recheck: the writer may have advanced between our
      // global load and the slot store. Re-publishing the newer epoch
      // and looping makes the final slot value always >= any epoch the
      // collector could have missed us at — see the reclamation-rule
      // comment in epoch.h for why this closes the race.
      for (;;) {
        uint64_t g = global_.load(std::memory_order_seq_cst);
        if (g == e) {
          active_readers_->Add(1);
          return Guard(this, i, e);
        }
        slots_[i].epoch.store(g, std::memory_order_seq_cst);
        e = g;
      }
    }
    std::this_thread::yield();  // all slots busy; readers unpin quickly
  }
}

void EpochDomain::Guard::Release() {
  if (domain_ == nullptr) {
    return;
  }
  domain_->slots_[slot_].epoch.store(0, std::memory_order_seq_cst);
  domain_->active_readers_->Sub(1);
  domain_ = nullptr;
}

void EpochDomain::Retire(EpochRetired* node) {
  node->epoch_stamp_ = global_.load(std::memory_order_seq_cst);
  node->epoch_next_ = retired_head_;
  retired_head_ = node;
  ++retired_count_;
  retired_metric_->Increment();
}

uint64_t EpochDomain::Advance() {
  return global_.fetch_add(1, std::memory_order_seq_cst) + 1;
}

uint64_t EpochDomain::min_pinned_epoch() const {
  uint64_t min_pinned = 0;
  for (size_t i = 0; i < kMaxSlots; ++i) {
    uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e != 0 && (min_pinned == 0 || e < min_pinned)) {
      min_pinned = e;
    }
  }
  return min_pinned;
}

size_t EpochDomain::Collect() {
  const uint64_t global = global_.load(std::memory_order_seq_cst);
  const uint64_t min_pinned = min_pinned_epoch();
  const uint64_t horizon = min_pinned == 0
                               ? global
                               : (min_pinned < global ? min_pinned : global);
  oldest_pinned_age_->Set(
      min_pinned == 0 ? 0 : static_cast<int64_t>(global - min_pinned));

  // Partition the intrusive list: free everything stamped before the
  // horizon, keep the rest. No allocation either way.
  EpochRetired* keep_head = nullptr;
  EpochRetired* node = retired_head_;
  size_t freed = 0;
  while (node != nullptr) {
    EpochRetired* next = node->epoch_next_;
    if (node->epoch_stamp_ < horizon) {
      delete node;
      ++freed;
    } else {
      node->epoch_next_ = keep_head;
      keep_head = node;
    }
    node = next;
  }
  retired_head_ = keep_head;
  retired_count_ -= freed;
  if (freed > 0) {
    reclaimed_metric_->Add(static_cast<uint64_t>(freed));
  }
  return freed;
}

}  // namespace provdb
