#include "common/thread_pool.h"

namespace provdb {

ThreadPool::ThreadPool(size_t num_threads)
    : tasks_total_(
          observability::GlobalMetrics().counter("threadpool.tasks")),
      queue_depth_(
          observability::GlobalMetrics().gauge("threadpool.queue_depth")),
      task_latency_(observability::GlobalMetrics().histogram(
          "threadpool.task.latency_us")) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  wake_.SignalAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

uint64_t ThreadPool::tasks_executed() const {
  MutexLock lock(&mu_);
  return executed_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) {
        wake_.Wait();
      }
      if (queue_.empty()) {
        return;  // stopping_ and fully drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->Sub(1);
    }
    {
      observability::ScopedLatencyTimer timer(task_latency_);
      task();  // packaged_task captures exceptions into the future
    }
    tasks_total_->Increment();
    {
      MutexLock lock(&mu_);
      ++executed_;
    }
  }
}

}  // namespace provdb
