#ifndef PROVDB_NET_SOCKET_H_
#define PROVDB_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace provdb::net {

/// Outcome of one non-blocking read or write attempt.
struct IoResult {
  /// Bytes transferred (0 is legal for writes with a full kernel buffer).
  size_t bytes = 0;
  /// The kernel had nothing to give / no room to take; retry after poll.
  bool would_block = false;
  /// Read only: the peer closed its write half.
  bool eof = false;
};

/// Thin RAII wrapper over one TCP socket fd. Loopback-oriented (the
/// provenance service fronts a trusted store; transport security between
/// sites is out of scope, as is the paper's). Move-only; the destructor
/// closes the fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Blocking connect to `host:port` (IPv4 dotted quad, e.g. 127.0.0.1).
  static Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Switches the fd to non-blocking mode.
  Status SetNonBlocking();

  /// Disables Nagle batching; the protocol does its own (group commit).
  Status SetNoDelay();

  /// Reads up to `max` bytes, appending to `*out`.
  Result<IoResult> Read(size_t max, Bytes* out);

  /// Writes as much of `data` as the kernel accepts.
  Result<IoResult> Write(ByteView data);

  /// Half-close: signals EOF to the peer while keeping the read side
  /// open, so a client can say "no more requests" and still collect every
  /// response (the tamper matrix drives truncated-frame cases this way).
  void ShutdownWrite();

  /// Closes eagerly (also done by the destructor).
  void Close();

 private:
  int fd_ = -1;
};

/// RAII listening socket bound to 127.0.0.1. Port 0 binds an ephemeral
/// port, reported by `bound_port()` — tests and benches never race over a
/// fixed port.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral), listens, and switches the
  /// accept queue to non-blocking.
  static Result<ListenSocket> Listen(uint16_t port, int backlog = 128);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  uint16_t bound_port() const { return bound_port_; }

  /// Accepts one pending connection; `would_block` when none is queued.
  /// The accepted socket is already non-blocking.
  Result<Socket> Accept(bool* would_block);

  void Close();

 private:
  int fd_ = -1;
  uint16_t bound_port_ = 0;
};

/// Self-pipe used to wake a poll(2) loop from another thread: the poll
/// set includes `read_fd()`; any thread calls `Wake()`; the loop calls
/// `DrainWakes()` once woken. Both ends are non-blocking, so a burst of
/// wakes coalesces instead of blocking the waker.
class WakePipe {
 public:
  WakePipe() = default;
  ~WakePipe();

  WakePipe(WakePipe&& other) noexcept;
  WakePipe& operator=(WakePipe&& other) noexcept;
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  static Result<WakePipe> Create();

  bool valid() const { return read_fd_ >= 0; }
  int read_fd() const { return read_fd_; }

  /// Nudges the poll loop. Safe from any thread; a full pipe is fine
  /// (the loop is already guaranteed to wake).
  void Wake();

  /// Consumes every queued wake byte.
  void DrainWakes();

 private:
  WakePipe(int read_fd, int write_fd)
      : read_fd_(read_fd), write_fd_(write_fd) {}

  int read_fd_ = -1;
  int write_fd_ = -1;
};

}  // namespace provdb::net

#endif  // PROVDB_NET_SOCKET_H_
