#include "net/admission.h"

namespace provdb::net {

AdmissionController::AdmissionController(
    uint64_t budget_bytes, observability::MetricsRegistry* metrics)
    : budget_(budget_bytes),
      in_flight_gauge_(metrics->gauge("server.inflight.bytes")),
      shed_(metrics->counter("server.requests.shed")) {}

bool AdmissionController::Admit(uint64_t bytes) {
  if (in_flight_ + bytes > budget_) {
    shed_->Increment();
    return false;
  }
  in_flight_ += bytes;
  in_flight_gauge_->Set(static_cast<int64_t>(in_flight_));
  return true;
}

void AdmissionController::Swap(uint64_t from, uint64_t to) {
  in_flight_ -= from;
  in_flight_ += to;
  in_flight_gauge_->Set(static_cast<int64_t>(in_flight_));
}

void AdmissionController::Release(uint64_t bytes) {
  in_flight_ -= bytes;
  in_flight_gauge_->Set(static_cast<int64_t>(in_flight_));
}

}  // namespace provdb::net
