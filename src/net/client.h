#ifndef PROVDB_NET_CLIENT_H_
#define PROVDB_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "net/socket.h"
#include "net/wire.h"

namespace provdb::net {

/// Blocking client for the provenance service. One connection, not
/// thread-safe; a multi-client workload holds one per simulated client.
///
/// Two usage styles:
///   * Call() — one request, wait for its response (simple tools),
///   * SendRequest() xN then ReadResponse() xN — pipelining. The server
///     answers in request order per connection, so responses pair with
///     requests positionally. The load generator uses this to keep many
///     requests in flight per connection.
class ProvenanceClient {
 public:
  static Result<ProvenanceClient> Connect(
      const std::string& host, uint16_t port,
      size_t max_response_payload = 32u << 20);

  ProvenanceClient(ProvenanceClient&&) = default;
  ProvenanceClient& operator=(ProvenanceClient&&) = default;

  /// SendRequest + ReadResponse.
  Result<Response> Call(const Request& request);

  /// Frames and writes one request (does not wait).
  Status SendRequest(const Request& request);

  /// Blocks for the next response frame. kIoError when the server closes
  /// the connection first; kCorruption when the stream is malformed.
  Result<Response> ReadResponse();

  /// Writes raw bytes as-is — the tamper matrix injects corrupted frames
  /// through this.
  Status SendBytes(ByteView raw);

  /// Half-close: EOF to the server, read side stays open. ReadResponse
  /// still drains whatever the server answers before it closes.
  void FinishWrites() { sock_.ShutdownWrite(); }

  void Close() { sock_.Close(); }

 private:
  explicit ProvenanceClient(Socket sock, size_t max_response_payload)
      : sock_(std::move(sock)),
        max_response_payload_(max_response_payload) {}

  Socket sock_;
  Bytes rbuf_;
  size_t max_response_payload_;
};

}  // namespace provdb::net

#endif  // PROVDB_NET_CLIENT_H_
