#include "net/wire.h"

#include "common/crc32.h"
#include "common/varint.h"
#include "crypto/digest.h"
#include "provenance/serialization.h"

namespace provdb::net {

namespace {

/// Highest StatusCode a response may carry (common/status.h).
constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(
    StatusCode::kUnavailable);

/// Reads a digest encoded as a length-prefixed field. Lengths above the
/// digest width are rejected rather than truncated: truncation would make
/// two distinct byte strings decode to the same request, breaking the
/// encode/decode bijection the tamper matrix relies on.
Result<crypto::Digest> ReadDigest(VarintReader* reader) {
  PROVDB_ASSIGN_OR_RETURN(Bytes raw, reader->ReadLengthPrefixed());
  if (raw.size() > crypto::Digest::kMaxSize) {
    return Status::Corruption("digest field exceeds digest width");
  }
  return crypto::Digest::FromBytes(raw);
}

Bytes EncodeSubmitBody(const SubmitRequest& submit) {
  Bytes out;
  AppendVarint64(&out, submit.participant_id);
  AppendByte(&out, static_cast<uint8_t>(submit.op));
  AppendVarint64(&out, submit.object);
  uint8_t flags = 0;
  if (submit.has_pre_hash) flags |= 0x01;
  if (submit.inherited) flags |= 0x02;
  AppendByte(&out, flags);
  AppendLengthPrefixed(&out, submit.post_hash.view());
  if (submit.has_pre_hash) {
    AppendLengthPrefixed(&out, submit.pre_hash.view());
  }
  AppendVarint64(&out, submit.inputs.size());
  for (size_t i = 0; i < submit.inputs.size(); ++i) {
    AppendVarint64(&out, submit.inputs[i].object_id);
    AppendLengthPrefixed(&out, submit.inputs[i].state_hash.view());
    const Bytes empty;
    AppendLengthPrefixed(&out, i < submit.input_prev_checksums.size()
                                   ? ByteView(submit.input_prev_checksums[i])
                                   : ByteView(empty));
  }
  AppendVarint64(&out, submit.aggregate_seq);
  return out;
}

Result<SubmitRequest> DecodeSubmitBody(VarintReader* reader) {
  SubmitRequest submit;
  PROVDB_ASSIGN_OR_RETURN(submit.participant_id, reader->ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(Bytes op_byte, reader->ReadRaw(1));
  if (op_byte[0] > static_cast<uint8_t>(
                       provenance::OperationType::kAggregate)) {
    return Status::Corruption("unknown operation type in submit request");
  }
  submit.op = static_cast<provenance::OperationType>(op_byte[0]);
  PROVDB_ASSIGN_OR_RETURN(submit.object, reader->ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(Bytes flags, reader->ReadRaw(1));
  if ((flags[0] & ~uint8_t{0x03}) != 0) {
    return Status::Corruption("unknown flag bits in submit request");
  }
  submit.has_pre_hash = (flags[0] & 0x01) != 0;
  submit.inherited = (flags[0] & 0x02) != 0;
  PROVDB_ASSIGN_OR_RETURN(submit.post_hash, ReadDigest(reader));
  if (submit.has_pre_hash) {
    PROVDB_ASSIGN_OR_RETURN(submit.pre_hash, ReadDigest(reader));
  }
  PROVDB_ASSIGN_OR_RETURN(uint64_t num_inputs, reader->ReadVarint64());
  // Every input occupies at least 3 encoded bytes, so a count beyond
  // remaining() cannot be satisfied — fail before allocating for it.
  if (num_inputs > reader->remaining()) {
    return Status::Corruption("submit input count exceeds payload");
  }
  submit.inputs.reserve(static_cast<size_t>(num_inputs));
  submit.input_prev_checksums.reserve(static_cast<size_t>(num_inputs));
  for (uint64_t i = 0; i < num_inputs; ++i) {
    provenance::ObjectState state;
    PROVDB_ASSIGN_OR_RETURN(state.object_id, reader->ReadVarint64());
    PROVDB_ASSIGN_OR_RETURN(state.state_hash, ReadDigest(reader));
    submit.inputs.push_back(state);
    PROVDB_ASSIGN_OR_RETURN(Bytes prev, reader->ReadLengthPrefixed());
    submit.input_prev_checksums.push_back(std::move(prev));
  }
  PROVDB_ASSIGN_OR_RETURN(submit.aggregate_seq, reader->ReadVarint64());
  return submit;
}

}  // namespace

std::string_view NetOpName(NetOp op) {
  switch (op) {
    case NetOp::kSubmitRecord:
      return "submit-record";
    case NetOp::kQueryChain:
      return "query-chain";
    case NetOp::kVerifyObject:
      return "verify-object";
    case NetOp::kStats:
      return "stats";
  }
  return "unknown";
}

Bytes EncodeFrame(ByteView payload) {
  Bytes out;
  out.reserve(payload.size() + kMaxFrameOverhead);
  AppendVarint64(&out, payload.size());
  AppendBytes(&out, payload);
  AppendFixed32(&out, Crc32(payload));
  return out;
}

Result<bool> TryDecodeFrame(ByteView buf, size_t max_payload,
                            size_t* consumed, Bytes* payload) {
  // Parse the length varint byte-by-byte so an incomplete prefix is
  // "need more", while a malformed one (overlong, over 64 bits) is
  // corruption even before the rest of the frame arrives.
  uint64_t len = 0;
  size_t header = 0;
  int shift = 0;
  for (;; ++header) {
    if (header >= buf.size()) return false;  // mid-varint: need more
    uint8_t b = buf[header];
    if (shift >= 63 && (b & 0x7F) > 1) {
      return Status::Corruption("frame length varint overflows 64 bits");
    }
    len |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      if (b == 0 && shift > 0) {
        return Status::Corruption("non-canonical frame length varint");
      }
      ++header;
      break;
    }
    shift += 7;
    if (shift > 63) {
      return Status::Corruption("frame length varint too long");
    }
  }
  if (len > max_payload) {
    return Status::Corruption("frame payload exceeds protocol maximum");
  }
  const size_t total = header + static_cast<size_t>(len) + 4;
  if (buf.size() < total) return false;  // need more
  ByteView body = buf.subview(header, static_cast<size_t>(len));
  uint32_t stored = ReadFixed32(buf, header + static_cast<size_t>(len));
  if (Crc32(body) != stored) {
    return Status::Corruption("frame checksum mismatch");
  }
  *consumed = total;
  *payload = body.ToBytes();
  return true;
}

Bytes EncodeRequest(const Request& request) {
  Bytes out;
  AppendByte(&out, kWireVersion);
  AppendByte(&out, static_cast<uint8_t>(request.op));
  switch (request.op) {
    case NetOp::kSubmitRecord: {
      Bytes body = EncodeSubmitBody(request.submit);
      AppendBytes(&out, body);
      break;
    }
    case NetOp::kQueryChain:
    case NetOp::kVerifyObject:
      AppendVarint64(&out, request.object);
      break;
    case NetOp::kStats:
      break;
  }
  return out;
}

Result<Request> DecodeRequest(ByteView payload) {
  VarintReader reader(payload);
  PROVDB_ASSIGN_OR_RETURN(Bytes version, reader.ReadRaw(1));
  if (version[0] != kWireVersion) {
    return Status::Corruption("unsupported wire version");
  }
  PROVDB_ASSIGN_OR_RETURN(Bytes op_byte, reader.ReadRaw(1));
  if (op_byte[0] < static_cast<uint8_t>(NetOp::kSubmitRecord) ||
      op_byte[0] > static_cast<uint8_t>(NetOp::kStats)) {
    return Status::Corruption("unknown request op");
  }
  Request request;
  request.op = static_cast<NetOp>(op_byte[0]);
  switch (request.op) {
    case NetOp::kSubmitRecord: {
      PROVDB_ASSIGN_OR_RETURN(request.submit, DecodeSubmitBody(&reader));
      break;
    }
    case NetOp::kQueryChain:
    case NetOp::kVerifyObject: {
      PROVDB_ASSIGN_OR_RETURN(request.object, reader.ReadVarint64());
      break;
    }
    case NetOp::kStats:
      break;
  }
  if (!reader.done()) {
    return Status::Corruption("trailing bytes after request body");
  }
  return request;
}

Bytes EncodeResponse(const Response& response) {
  Bytes out;
  AppendByte(&out, kWireVersion);
  AppendByte(&out, static_cast<uint8_t>(response.code));
  AppendLengthPrefixed(&out, ByteView(response.message));
  AppendLengthPrefixed(&out, response.body);
  return out;
}

Result<Response> DecodeResponse(ByteView payload) {
  VarintReader reader(payload);
  PROVDB_ASSIGN_OR_RETURN(Bytes version, reader.ReadRaw(1));
  if (version[0] != kWireVersion) {
    return Status::Corruption("unsupported wire version");
  }
  PROVDB_ASSIGN_OR_RETURN(Bytes code, reader.ReadRaw(1));
  if (code[0] > kMaxStatusCode) {
    return Status::Corruption("unknown status code in response");
  }
  Response response;
  response.code = static_cast<StatusCode>(code[0]);
  PROVDB_ASSIGN_OR_RETURN(Bytes message, reader.ReadLengthPrefixed());
  response.message = ByteView(message).ToString();
  PROVDB_ASSIGN_OR_RETURN(response.body, reader.ReadLengthPrefixed());
  if (!reader.done()) {
    return Status::Corruption("trailing bytes after response body");
  }
  return response;
}

Bytes EncodeVerifySummary(const VerifySummary& summary) {
  Bytes out;
  AppendVarint64(&out, summary.records_checked);
  AppendVarint64(&out, summary.signatures_verified);
  AppendVarint64(&out, summary.issues);
  AppendByte(&out, summary.ok ? 1 : 0);
  return out;
}

Result<VerifySummary> DecodeVerifySummary(ByteView body) {
  VarintReader reader(body);
  VerifySummary summary;
  PROVDB_ASSIGN_OR_RETURN(summary.records_checked, reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(summary.signatures_verified,
                          reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(summary.issues, reader.ReadVarint64());
  PROVDB_ASSIGN_OR_RETURN(Bytes ok_byte, reader.ReadRaw(1));
  if (ok_byte[0] > 1) {
    return Status::Corruption("verify summary ok flag out of range");
  }
  summary.ok = ok_byte[0] == 1;
  if (!reader.done()) {
    return Status::Corruption("trailing bytes after verify summary");
  }
  return summary;
}

Result<std::vector<provenance::ProvenanceRecord>> DecodeChainBody(
    ByteView body) {
  VarintReader reader(body);
  PROVDB_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint64());
  if (count > reader.remaining()) {
    return Status::Corruption("chain record count exceeds payload");
  }
  std::vector<provenance::ProvenanceRecord> records;
  records.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    PROVDB_ASSIGN_OR_RETURN(Bytes encoded, reader.ReadLengthPrefixed());
    PROVDB_ASSIGN_OR_RETURN(provenance::ProvenanceRecord record,
                            provenance::DecodeRecord(encoded));
    records.push_back(std::move(record));
  }
  if (!reader.done()) {
    return Status::Corruption("trailing bytes after chain body");
  }
  return records;
}

}  // namespace provdb::net
