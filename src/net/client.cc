#include "net/client.h"

namespace provdb::net {

Result<ProvenanceClient> ProvenanceClient::Connect(
    const std::string& host, uint16_t port, size_t max_response_payload) {
  PROVDB_ASSIGN_OR_RETURN(Socket sock, Socket::ConnectTcp(host, port));
  PROVDB_RETURN_IF_ERROR(sock.SetNoDelay());
  return ProvenanceClient(std::move(sock), max_response_payload);
}

Result<Response> ProvenanceClient::Call(const Request& request) {
  PROVDB_RETURN_IF_ERROR(SendRequest(request));
  return ReadResponse();
}

Status ProvenanceClient::SendRequest(const Request& request) {
  return SendBytes(EncodeFrame(EncodeRequest(request)));
}

Result<Response> ProvenanceClient::ReadResponse() {
  for (;;) {
    size_t consumed = 0;
    Bytes payload;
    PROVDB_ASSIGN_OR_RETURN(
        bool complete, TryDecodeFrame(rbuf_, max_response_payload_,
                                      &consumed, &payload));
    if (complete) {
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<ptrdiff_t>(consumed));
      return DecodeResponse(payload);
    }
    PROVDB_ASSIGN_OR_RETURN(IoResult io, sock_.Read(64 * 1024, &rbuf_));
    if (io.eof) {
      return Status::IoError("connection closed mid-response");
    }
    // A blocking socket never reports would_block; loop for more bytes.
  }
}

Status ProvenanceClient::SendBytes(ByteView raw) {
  size_t offset = 0;
  while (offset < raw.size()) {
    PROVDB_ASSIGN_OR_RETURN(IoResult io,
                            sock_.Write(raw.subview(offset)));
    offset += io.bytes;
    if (io.bytes == 0 && io.would_block) {
      return Status::IoError("blocking socket reported would_block");
    }
  }
  return Status::OK();
}

}  // namespace provdb::net
