#ifndef PROVDB_NET_WIRE_H_
#define PROVDB_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "provenance/record.h"
#include "storage/tree_store.h"

namespace provdb::net {

/// Wire protocol for the provenance service (DESIGN.md §14).
///
/// Framing reuses the WAL's idiom (storage/wal.h): every message travels
/// as one frame
///
///   varint(payload_len) || payload || crc32(payload) fixed32
///
/// so a flipped bit anywhere in a frame is caught by the checksum before
/// the payload is even parsed, and a truncated frame is distinguishable
/// from a corrupt one (the decoder reports "need more bytes", not an
/// error). Payload length is bounded (`kMaxFramePayload` by default); a
/// length prefix above the bound is corruption — the peer is either
/// malicious or speaking another protocol, and buffering unbounded input
/// on its say-so would be a memory DoS.
///
/// Payloads are versioned: requests are [version][op][body], responses
/// are [version][status][message][body]. Decoding is strict — every body
/// must consume the payload exactly (trailing bytes are corruption), and
/// varints are canonical (common/varint.cc rejects overlong encodings),
/// so encode/decode is a bijection: each message has exactly one valid
/// byte representation. The tamper matrix in tests/net/ relies on this.

/// Protocol version carried in every payload.
inline constexpr uint8_t kWireVersion = 1;

/// Default ceiling for a frame payload (1 MiB). Generous for any request
/// this protocol defines; response frames carrying large chains may
/// legitimately exceed it, so servers and clients take the bound as an
/// option rather than a constant.
inline constexpr size_t kMaxFramePayload = 1u << 20;

/// Frame overhead: worst-case length varint + CRC trailer.
inline constexpr size_t kMaxFrameOverhead = 10 + 4;

/// Request operations.
enum class NetOp : uint8_t {
  kSubmitRecord = 1,
  kQueryChain = 2,
  kVerifyObject = 3,
  kStats = 4,
};

/// Returns "submit-record" / "query-chain" / "verify-object" / "stats".
std::string_view NetOpName(NetOp op);

/// A submit-record request: a provenance::IngestRequest with the borrowed
/// participant pointer replaced by the participant id (the server resolves
/// it against its own PKI material; a remote peer never ships keys).
struct SubmitRequest {
  uint64_t participant_id = 0;
  provenance::OperationType op = provenance::OperationType::kInsert;
  storage::ObjectId object = storage::kInvalidObjectId;
  crypto::Digest post_hash;
  bool has_pre_hash = false;
  crypto::Digest pre_hash;
  bool inherited = false;
  std::vector<provenance::ObjectState> inputs;
  std::vector<Bytes> input_prev_checksums;  // aligned with `inputs`
  provenance::SeqId aggregate_seq = 0;
};

/// A decoded request.
struct Request {
  NetOp op = NetOp::kStats;
  /// kSubmitRecord only.
  SubmitRequest submit;
  /// kQueryChain / kVerifyObject: the subject object.
  storage::ObjectId object = storage::kInvalidObjectId;
};

/// A response: a Status (code + message) plus an op-specific body.
///   kSubmitRecord: varint assigned seq_id
///   kQueryChain:   varint record count, then length-prefixed
///                  EncodeRecord payloads in seqID order
///   kVerifyObject: varint records_checked, varint signatures_verified,
///                  varint issue count, one byte ok flag
///   kStats:        MetricsRegistry::SnapshotJson bytes
/// The body is empty whenever the status is not OK.
struct Response {
  StatusCode code = StatusCode::kOk;
  std::string message;
  Bytes body;

  bool ok() const { return code == StatusCode::kOk; }
  Status ToStatus() const {
    return ok() ? Status::OK() : Status(code, message);
  }
};

/// Decoded kVerifyObject response body.
struct VerifySummary {
  uint64_t records_checked = 0;
  uint64_t signatures_verified = 0;
  uint64_t issues = 0;
  bool ok = false;
};

// -- Framing -----------------------------------------------------------

/// Wraps `payload` in a frame: varint length, payload, CRC32 trailer.
Bytes EncodeFrame(ByteView payload);

/// Incremental frame decoder over a receive buffer. Returns:
///   true   — a complete, checksum-valid frame starts at `buf[0]`;
///            `*payload` holds its payload and `*consumed` its full wire
///            size (length prefix + payload + CRC),
///   false  — `buf` holds a valid frame prefix; read more bytes,
///   error  — kCorruption: oversized length, non-canonical length varint,
///            or CRC mismatch. The connection cannot be resynchronized.
Result<bool> TryDecodeFrame(ByteView buf, size_t max_payload,
                            size_t* consumed, Bytes* payload);

// -- Requests ----------------------------------------------------------

/// Encodes a request payload (not framed; pass to EncodeFrame).
Bytes EncodeRequest(const Request& request);

/// Strict inverse of EncodeRequest: unknown version/op, malformed body,
/// or trailing bytes are kCorruption.
Result<Request> DecodeRequest(ByteView payload);

// -- Responses ---------------------------------------------------------

/// Encodes a response payload (not framed).
Bytes EncodeResponse(const Response& response);

/// Strict inverse of EncodeResponse.
Result<Response> DecodeResponse(ByteView payload);

/// Encodes/decodes a kVerifyObject response body.
Bytes EncodeVerifySummary(const VerifySummary& summary);
Result<VerifySummary> DecodeVerifySummary(ByteView body);

/// Decodes a kQueryChain response body into records.
Result<std::vector<provenance::ProvenanceRecord>> DecodeChainBody(
    ByteView body);

}  // namespace provdb::net

#endif  // PROVDB_NET_WIRE_H_
