#ifndef PROVDB_NET_SERVER_H_
#define PROVDB_NET_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "crypto/pki.h"
#include "net/admission.h"
#include "net/socket.h"
#include "net/wire.h"
#include "observability/metrics.h"
#include "provenance/checksum.h"
#include "provenance/ingest_pipeline.h"

namespace provdb::net {

/// Tuning knobs for ProvenanceServer.
struct ServerOptions {
  /// Listen port on 127.0.0.1; 0 binds an ephemeral port (see `port()`).
  uint16_t port = 0;

  /// Ceiling for one request frame payload; larger prefixes are
  /// corruption (the peer is hostile or confused, not just chatty).
  size_t max_frame_payload = kMaxFramePayload;

  /// Ceiling for one response body (chains can outgrow request-sized
  /// frames); an over-limit chain answers kOutOfRange instead.
  size_t max_response_payload = 16u << 20;

  /// Admission control: per-connection cap on requests admitted but not
  /// yet answered...
  size_t max_pending_per_connection = 64;
  /// ...and the global in-flight byte budget (see AdmissionController).
  /// Breaching either sheds the request with kUnavailable.
  uint64_t max_inflight_bytes = 8ull << 20;

  /// Per-connection ceiling on buffered outbound bytes; a peer that
  /// stops reading its responses is disconnected once it accrues this
  /// much (the admission budget bounds *charged* responses, this bounds
  /// the uncharged rejection frames a hostile peer could farm).
  size_t max_connection_buffer = (2u << 20);

  /// poll(2) tick; an upper bound on Stop() latency, not on request
  /// latency (I/O readiness and executor completions wake the loop).
  int poll_timeout_ms = 100;
};

/// A long-running network front-end for one IngestPipeline (DESIGN.md
/// §14): accepts loopback TCP connections speaking the net/wire.h
/// protocol and executes submit-record / query-chain / verify-object /
/// stats requests against the pipeline and its store.
///
/// Threading — two single-thread executors (no raw threads, R03):
///   * the POLL thread owns every socket, every session buffer, and all
///     admission accounting; it parses frames, sheds overload, and
///     flushes responses,
///   * the EXECUTOR strand owns the pipeline and its store: it validates
///     submits against its chain-tail map (rejecting anything that would
///     poison the pipeline — a remote peer must not be able to wedge
///     ingest for everyone), submits a run of accepted records, then
///     issues ONE Drain() and only then acks them. An acked record is
///     therefore durable per the group-commit batch it rode in — the
///     pipeline's write-ahead contract extends to the wire. Reads
///     (query/verify/stats) run on the same strand after the drain that
///     precedes them, so they never race ingest.
/// The two communicate through locked queues and a self-pipe; per-
/// connection response order is request order (a reorder buffer holds
/// executor completions that finish ahead of an earlier request's).
///
/// While the server runs, the pipeline must not be written by any other
/// thread (reads via `pipeline->store()` race ingest as usual; Drain
/// first, e.g. after Stop()).
class ProvenanceServer {
 public:
  /// Drains `pipeline` (making the store readable), seeds the chain-tail
  /// map from it, binds the listen socket, and starts the poll loop.
  /// `registry` resolves participants for verify-object; `participants`
  /// maps the ids remote submitters may act as to their signing material.
  /// All three are borrowed and must outlive the server.
  static Result<std::unique_ptr<ProvenanceServer>> Start(
      provenance::IngestPipeline* pipeline,
      const crypto::ParticipantRegistry* registry,
      std::map<crypto::ParticipantId, const crypto::Participant*>
          participants,
      ServerOptions options);

  /// Stops the loop, closes every connection, and joins both executors.
  ~ProvenanceServer();

  ProvenanceServer(const ProvenanceServer&) = delete;
  ProvenanceServer& operator=(const ProvenanceServer&) = delete;

  /// The bound listen port (the ephemeral one when options.port was 0).
  uint16_t port() const { return listener_.bound_port(); }

  /// Idempotent graceful stop. In-flight requests already handed to the
  /// executor still commit (durably), but their responses are dropped
  /// with the connections; quiesce clients first when that matters.
  void Stop();

 private:
  /// One admitted request on its way to the executor strand.
  struct ExecItem {
    uint64_t session = 0;
    uint64_t seq = 0;
    Request request;
    uint64_t charge = 0;
    uint64_t arrival_micros = 0;
  };

  /// One executed response on its way back to the poll thread.
  struct DoneItem {
    uint64_t session = 0;
    uint64_t seq = 0;
    Bytes frame;  // fully framed response bytes
    uint64_t charge = 0;
    uint64_t arrival_micros = 0;
    bool ok = false;
  };

  /// A response frame waiting for its turn in the connection's order.
  struct ReadyResponse {
    Bytes frame;
    uint64_t charge = 0;
  };

  /// Per-connection state. Owned and touched exclusively by the poll
  /// thread — no lock, by construction.
  struct Session {
    uint64_t id = 0;
    Socket sock;
    Bytes rbuf;
    /// Outbound frames in emit order; front may be partially written.
    std::deque<ReadyResponse> wq;
    size_t wq_front_written = 0;
    size_t wq_bytes = 0;
    /// Completions that outran an earlier request's, keyed by seq.
    std::map<uint64_t, ReadyResponse> ready;
    uint64_t next_seq = 0;      // next request seq to assign
    uint64_t next_respond = 0;  // next seq allowed into wq
    size_t pending = 0;         // admitted, executor not yet answered
    bool closing = false;       // stop reading; close once drained
    bool defunct = false;       // peer closed its write half
    bool dead = false;          // write error; destroy at next sweep
  };

  ProvenanceServer(provenance::IngestPipeline* pipeline,
                   const crypto::ParticipantRegistry* registry,
                   std::map<crypto::ParticipantId,
                            const crypto::Participant*>
                       participants,
                   ServerOptions options);

  // -- Poll thread -----------------------------------------------------
  void PollLoop();
  void AcceptAll();
  void ReadSession(Session* s);
  void FlushSession(Session* s);
  void HandleDone(DoneItem item);
  /// Routes a response frame into the connection's order, flushing what
  /// became emittable.
  void EmitReady(Session* s, uint64_t seq, Bytes frame, uint64_t charge);
  /// Builds and routes an immediate (poll-thread) rejection.
  void RejectNow(Session* s, StatusCode code, std::string message);
  void DestroySession(uint64_t id);

  // -- Executor strand -------------------------------------------------
  void ExecutorRun();
  void ProcessBatch(std::deque<ExecItem> batch);
  /// Flushes the pipeline and acks `awaiting` (or fails them all when
  /// the drain fails — none of them is durable then).
  void DrainAndAck(std::vector<DoneItem>* out,
                   std::vector<std::pair<ExecItem, provenance::SeqId>>*
                       awaiting);
  /// Pre-validates a submit against the chain-tail map so no remote
  /// request can reach the pipeline's poison path; assigns the seq id
  /// the pipeline will give the record.
  Status ValidateSubmit(const SubmitRequest& submit,
                        provenance::SeqId* assigned);
  Response ExecuteRead(const Request& request);
  void PushDone(std::vector<DoneItem> items);

  provenance::IngestPipeline* pipeline_;
  const crypto::ParticipantRegistry* registry_;
  std::map<crypto::ParticipantId, const crypto::Participant*> participants_;
  ServerOptions options_;
  provenance::ChecksumEngine engine_;

  ListenSocket listener_;
  WakePipe wake_;

  // Poll-thread-only state (created before the loop starts, then touched
  // exclusively by PollLoop and its helpers).
  std::map<uint64_t, Session> sessions_;
  uint64_t next_session_id_ = 1;
  AdmissionController admission_;

  // Executor-strand-only state: the chain-tail guard. ObjectId -> last
  // committed (or validated-in-batch) seq id; absent = no chain.
  std::unordered_map<storage::ObjectId, provenance::SeqId> tails_;

  /// Guards the cross-thread handoff queues and the stop flag.
  mutable Mutex mu_;
  bool stop_ PROVDB_GUARDED_BY(mu_) = false;
  std::deque<ExecItem> exec_queue_ PROVDB_GUARDED_BY(mu_);
  std::deque<DoneItem> done_queue_ PROVDB_GUARDED_BY(mu_);
  bool exec_scheduled_ PROVDB_GUARDED_BY(mu_) = false;

  // Single-thread executors; loop_pool_ runs PollLoop as one long task,
  // exec_pool_ runs ExecutorRun strand activations.
  std::unique_ptr<ThreadPool> loop_pool_;
  std::unique_ptr<ThreadPool> exec_pool_;
  bool stopped_ = false;

  // Server observability (docs/OBSERVABILITY.md `server.*` inventory).
  observability::Counter* connections_accepted_;
  observability::Gauge* connections_active_;
  observability::Counter* requests_received_;
  observability::Counter* requests_ok_;
  observability::Counter* requests_failed_;
  observability::Counter* requests_corrupt_;
  observability::Counter* records_committed_;
  observability::Histogram* request_latency_;
};

}  // namespace provdb::net

#endif  // PROVDB_NET_SERVER_H_
