#include "net/server.h"

#include <poll.h>
#include <utility>

#include "common/varint.h"
#include "observability/trace.h"
#include "provenance/serialization.h"
#include "provenance/verifier.h"

namespace provdb::net {

namespace {

/// Read chunk per poll tick; level-triggered poll re-fires while more is
/// queued, so this bounds per-tick work, not throughput.
constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

ProvenanceServer::ProvenanceServer(
    provenance::IngestPipeline* pipeline,
    const crypto::ParticipantRegistry* registry,
    std::map<crypto::ParticipantId, const crypto::Participant*> participants,
    ServerOptions options)
    : pipeline_(pipeline),
      registry_(registry),
      participants_(std::move(participants)),
      options_(options),
      engine_(pipeline->options().hash_algorithm),
      admission_(options.max_inflight_bytes,
                 &observability::GlobalMetrics()),
      connections_accepted_(observability::GlobalMetrics().counter(
          "server.connections.accepted")),
      connections_active_(observability::GlobalMetrics().gauge(
          "server.connections.active")),
      requests_received_(observability::GlobalMetrics().counter(
          "server.requests.received")),
      requests_ok_(
          observability::GlobalMetrics().counter("server.requests.ok")),
      requests_failed_(observability::GlobalMetrics().counter(
          "server.requests.failed")),
      requests_corrupt_(observability::GlobalMetrics().counter(
          "server.requests.corrupt")),
      records_committed_(observability::GlobalMetrics().counter(
          "server.records.committed")),
      request_latency_(observability::GlobalMetrics().histogram(
          "server.request.latency")) {}

Result<std::unique_ptr<ProvenanceServer>> ProvenanceServer::Start(
    provenance::IngestPipeline* pipeline,
    const crypto::ParticipantRegistry* registry,
    std::map<crypto::ParticipantId, const crypto::Participant*> participants,
    ServerOptions options) {
  // Quiesce the pipeline so the store is safely readable for seeding.
  PROVDB_RETURN_IF_ERROR(pipeline->Drain());
  std::unique_ptr<ProvenanceServer> server(new ProvenanceServer(
      pipeline, registry, std::move(participants), options));
  PROVDB_ASSIGN_OR_RETURN(server->listener_,
                          ListenSocket::Listen(options.port));
  PROVDB_ASSIGN_OR_RETURN(server->wake_, WakePipe::Create());
  // Seed the chain-tail guard from the recovered store: the executor must
  // know every existing chain or a remote insert could collide with one
  // and poison the pipeline.
  for (const auto& [object, chain] : pipeline->store().AllChains()) {
    if (!chain.empty()) {
      server->tails_[object] = chain.back()->seq_id;
    }
  }
  server->loop_pool_ = std::make_unique<ThreadPool>(1);
  server->exec_pool_ = std::make_unique<ThreadPool>(1);
  ProvenanceServer* raw = server.get();
  raw->loop_pool_->Submit([raw] { raw->PollLoop(); });
  return server;
}

ProvenanceServer::~ProvenanceServer() { Stop(); }

void ProvenanceServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  wake_.Wake();
  loop_pool_->Shutdown();
  exec_pool_->Shutdown();
}

// -- Poll thread -------------------------------------------------------

void ProvenanceServer::PollLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_sessions;
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (stop_) break;
    }
    // Deliver executor completions first: they free admission budget and
    // may unblock response ordering.
    std::deque<DoneItem> done;
    {
      MutexLock lock(&mu_);
      done.swap(done_queue_);
    }
    while (!done.empty()) {
      HandleDone(std::move(done.front()));
      done.pop_front();
    }
    // Sweep sessions that finished (or died).
    std::vector<uint64_t> doomed;
    for (const auto& [id, s] : sessions_) {
      bool drained = s.wq.empty() && s.ready.empty() && s.pending == 0;
      if (s.dead || ((s.closing || s.defunct) && drained)) {
        doomed.push_back(id);
      }
    }
    for (uint64_t id : doomed) DestroySession(id);

    fds.clear();
    fd_sessions.clear();
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    fds.push_back(pollfd{wake_.read_fd(), POLLIN, 0});
    for (const auto& [id, s] : sessions_) {
      short events = 0;
      if (!s.closing && !s.defunct) events |= POLLIN;
      if (!s.wq.empty()) events |= POLLOUT;
      fds.push_back(pollfd{s.sock.fd(), events, 0});
      fd_sessions.push_back(id);
    }
    ::poll(fds.data(), fds.size(), options_.poll_timeout_ms);
    if (fds[1].revents != 0) wake_.DrainWakes();
    if ((fds[0].revents & POLLIN) != 0) AcceptAll();
    for (size_t i = 2; i < fds.size(); ++i) {
      auto it = sessions_.find(fd_sessions[i - 2]);
      if (it == sessions_.end()) continue;
      Session* s = &it->second;
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        s->dead = true;
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) FlushSession(s);
      if (!s->dead && (fds[i].revents & (POLLIN | POLLHUP)) != 0) {
        ReadSession(s);
      }
    }
  }
  listener_.Close();
  std::vector<uint64_t> all;
  all.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) all.push_back(id);
  for (uint64_t id : all) DestroySession(id);
}

void ProvenanceServer::AcceptAll() {
  for (;;) {
    bool would_block = false;
    auto sock = listener_.Accept(&would_block);
    if (!sock.ok() || would_block) return;
    // Group commit already batches; Nagle would only add latency.
    Status nodelay = sock->SetNoDelay();
    if (!nodelay.ok()) {
      continue;  // dying fd; drop the connection
    }
    uint64_t id = next_session_id_++;
    Session session;
    session.id = id;
    session.sock = std::move(*sock);
    sessions_.emplace(id, std::move(session));
    connections_accepted_->Increment();
    connections_active_->Set(static_cast<int64_t>(sessions_.size()));
  }
}

void ProvenanceServer::ReadSession(Session* s) {
  auto io = s->sock.Read(kReadChunk, &s->rbuf);
  if (!io.ok()) {
    s->dead = true;
    return;
  }
  if (io->eof) s->defunct = true;

  size_t offset = 0;
  std::vector<ExecItem> enqueue;
  while (!s->closing) {
    size_t consumed = 0;
    Bytes payload;
    auto frame =
        TryDecodeFrame(ByteView(s->rbuf).subview(offset),
                       options_.max_frame_payload, &consumed, &payload);
    if (!frame.ok()) {
      // The stream cannot be resynchronized after a framing error:
      // answer with the typed error and close once it flushes.
      requests_corrupt_->Increment();
      RejectNow(s, frame.status().code(), frame.status().message());
      s->closing = true;
      s->rbuf.clear();
      offset = 0;
      break;
    }
    if (!*frame) break;  // incomplete frame: wait for more bytes
    offset += consumed;
    requests_received_->Increment();
    const uint64_t charge = consumed;
    if (s->pending >= options_.max_pending_per_connection) {
      admission_.NoteShed();
      RejectNow(s, StatusCode::kUnavailable,
                "connection pending-request queue is full");
      continue;
    }
    if (!admission_.Admit(charge)) {
      RejectNow(s, StatusCode::kUnavailable,
                "server admission budget exhausted");
      continue;
    }
    auto request = DecodeRequest(payload);
    if (!request.ok()) {
      admission_.Release(charge);
      requests_corrupt_->Increment();
      RejectNow(s, request.status().code(), request.status().message());
      s->closing = true;
      s->rbuf.clear();
      offset = 0;
      break;
    }
    ExecItem item;
    item.session = s->id;
    item.seq = s->next_seq++;
    item.request = std::move(*request);
    item.charge = charge;
    item.arrival_micros = observability::ScopedLatencyTimer::NowMicros();
    ++s->pending;
    enqueue.push_back(std::move(item));
  }
  if (offset > 0) {
    s->rbuf.erase(s->rbuf.begin(),
                  s->rbuf.begin() + static_cast<ptrdiff_t>(offset));
  }
  if (!enqueue.empty()) {
    bool kick = false;
    {
      MutexLock lock(&mu_);
      for (auto& item : enqueue) exec_queue_.push_back(std::move(item));
      if (!exec_scheduled_) {
        exec_scheduled_ = true;
        kick = true;
      }
    }
    if (kick) exec_pool_->Submit([this] { ExecutorRun(); });
  }
}

void ProvenanceServer::FlushSession(Session* s) {
  while (!s->wq.empty()) {
    ReadyResponse& front = s->wq.front();
    ByteView rest(front.frame.data() + s->wq_front_written,
                  front.frame.size() - s->wq_front_written);
    auto io = s->sock.Write(rest);
    if (!io.ok()) {
      s->dead = true;
      return;
    }
    s->wq_front_written += io->bytes;
    if (io->would_block || io->bytes < rest.size()) return;
    s->wq_bytes -= front.frame.size();
    if (front.charge > 0) admission_.Release(front.charge);
    s->wq.pop_front();
    s->wq_front_written = 0;
  }
}

void ProvenanceServer::HandleDone(DoneItem item) {
  auto it = sessions_.find(item.session);
  if (it == sessions_.end()) {
    // The connection died while its request executed; the work is done
    // (and durable, for submits) but the answer has no recipient.
    admission_.Release(item.charge);
    return;
  }
  Session* s = &it->second;
  --s->pending;
  if (item.ok) {
    requests_ok_->Increment();
  } else {
    requests_failed_->Increment();
  }
  request_latency_->Record(observability::ScopedLatencyTimer::NowMicros() -
                           item.arrival_micros);
  const uint64_t response_charge = item.frame.size();
  admission_.Swap(item.charge, response_charge);
  EmitReady(s, item.seq, std::move(item.frame), response_charge);
}

void ProvenanceServer::EmitReady(Session* s, uint64_t seq, Bytes frame,
                                 uint64_t charge) {
  s->ready.emplace(seq, ReadyResponse{std::move(frame), charge});
  for (;;) {
    auto it = s->ready.find(s->next_respond);
    if (it == s->ready.end()) break;
    s->wq_bytes += it->second.frame.size();
    s->wq.push_back(std::move(it->second));
    s->ready.erase(it);
    ++s->next_respond;
  }
  FlushSession(s);
  // A peer that does not read its responses must not grow our buffers
  // without bound: stop reading new requests at the soft cap, drop the
  // connection outright at the hard one (soft + one maximal response —
  // a single legitimately large chain response never trips it).
  if (s->wq_bytes > options_.max_connection_buffer) s->closing = true;
  if (s->wq_bytes >
      options_.max_connection_buffer + options_.max_response_payload) {
    s->dead = true;
  }
}

void ProvenanceServer::RejectNow(Session* s, StatusCode code,
                                 std::string message) {
  Response response;
  response.code = code;
  response.message = std::move(message);
  Bytes frame = EncodeFrame(EncodeResponse(response));
  requests_failed_->Increment();
  EmitReady(s, s->next_seq++, std::move(frame), 0);
}

void ProvenanceServer::DestroySession(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  for (const auto& r : s.wq) {
    if (r.charge > 0) admission_.Release(r.charge);
  }
  for (const auto& [seq, r] : s.ready) {
    if (r.charge > 0) admission_.Release(r.charge);
  }
  // Charges for requests still on the executor are released when their
  // DoneItems come back and find no session.
  sessions_.erase(it);
  connections_active_->Set(static_cast<int64_t>(sessions_.size()));
}

// -- Executor strand ---------------------------------------------------

void ProvenanceServer::ExecutorRun() {
  for (;;) {
    std::deque<ExecItem> batch;
    {
      MutexLock lock(&mu_);
      if (exec_queue_.empty()) {
        exec_scheduled_ = false;
        return;
      }
      batch.swap(exec_queue_);
    }
    ProcessBatch(std::move(batch));
  }
}

void ProvenanceServer::ProcessBatch(std::deque<ExecItem> batch) {
  std::vector<DoneItem> out;
  std::vector<std::pair<ExecItem, provenance::SeqId>> awaiting;
  auto make_done = [](const ExecItem& item, Response response) {
    DoneItem done;
    done.session = item.session;
    done.seq = item.seq;
    done.charge = item.charge;
    done.arrival_micros = item.arrival_micros;
    done.ok = response.ok();
    done.frame = EncodeFrame(EncodeResponse(response));
    return done;
  };
  for (auto& item : batch) {
    observability::TraceSpan span("server.request");
    if (item.request.op == NetOp::kSubmitRecord) {
      provenance::SeqId assigned = 0;
      Status valid = ValidateSubmit(item.request.submit, &assigned);
      if (valid.ok()) {
        const SubmitRequest& submit = item.request.submit;
        provenance::IngestRequest ingest;
        ingest.op = submit.op;
        ingest.object = submit.object;
        ingest.post_hash = submit.post_hash;
        ingest.has_pre_hash = submit.has_pre_hash;
        ingest.pre_hash = submit.pre_hash;
        ingest.inputs = submit.inputs;
        ingest.input_prev_checksums = submit.input_prev_checksums;
        ingest.aggregate_seq = submit.aggregate_seq;
        ingest.inherited = submit.inherited;
        ingest.participant = participants_.at(submit.participant_id);
        valid = pipeline_->Submit(ingest);
        if (valid.ok()) {
          awaiting.emplace_back(std::move(item), assigned);
          continue;
        }
      }
      Response response;
      response.code = valid.code();
      response.message = valid.message();
      out.push_back(make_done(item, std::move(response)));
    } else {
      // A read observes everything submitted before it on this
      // connection ordering: commit the pending run first.
      DrainAndAck(&out, &awaiting);
      out.push_back(make_done(item, ExecuteRead(item.request)));
    }
  }
  DrainAndAck(&out, &awaiting);
  PushDone(std::move(out));
}

void ProvenanceServer::DrainAndAck(
    std::vector<DoneItem>* out,
    std::vector<std::pair<ExecItem, provenance::SeqId>>* awaiting) {
  if (awaiting->empty()) return;
  // ONE fsync point for the whole run — the group-commit batch these
  // submits rode in. Only after it do the acks exist at all: an accepted
  // record is durable, unconditionally.
  Status drained = pipeline_->Drain();
  for (auto& [item, assigned] : *awaiting) {
    Response response;
    if (drained.ok()) {
      AppendVarint64(&response.body, assigned);
      records_committed_->Increment();
    } else {
      response.code = drained.code();
      response.message = drained.message();
    }
    DoneItem done;
    done.session = item.session;
    done.seq = item.seq;
    done.charge = item.charge;
    done.arrival_micros = item.arrival_micros;
    done.ok = response.ok();
    done.frame = EncodeFrame(EncodeResponse(response));
    out->push_back(std::move(done));
  }
  awaiting->clear();
}

Status ProvenanceServer::ValidateSubmit(const SubmitRequest& submit,
                                        provenance::SeqId* assigned) {
  if (participants_.find(submit.participant_id) == participants_.end()) {
    return Status::NotFound("unknown participant id " +
                            std::to_string(submit.participant_id));
  }
  if (submit.object == storage::kInvalidObjectId) {
    return Status::InvalidArgument("submit has no output object");
  }
  auto tail = tails_.find(submit.object);
  const bool exists = tail != tails_.end();
  switch (submit.op) {
    case provenance::OperationType::kInsert:
      if (!submit.inputs.empty() || !submit.input_prev_checksums.empty()) {
        return Status::InvalidArgument("insert carries explicit inputs");
      }
      if (exists) {
        return Status::FailedPrecondition(
            "object " + std::to_string(submit.object) +
            " already has a chain");
      }
      *assigned = 0;
      break;
    case provenance::OperationType::kUpdate:
      if (!submit.inputs.empty() || !submit.input_prev_checksums.empty()) {
        return Status::InvalidArgument("update carries explicit inputs");
      }
      // Bootstrap objects (no chain yet) legitimately start at seq 0.
      *assigned = exists ? tail->second + 1 : 0;
      break;
    case provenance::OperationType::kAggregate:
      if (exists) {
        return Status::FailedPrecondition(
            "aggregate output " + std::to_string(submit.object) +
            " already has a chain");
      }
      if (submit.inputs.empty()) {
        return Status::InvalidArgument(
            "aggregate requires at least one input");
      }
      if (submit.input_prev_checksums.size() != submit.inputs.size()) {
        return Status::InvalidArgument(
            "aggregate prev-checksum count does not match its inputs");
      }
      for (size_t i = 1; i < submit.inputs.size(); ++i) {
        if (submit.inputs[i].object_id <= submit.inputs[i - 1].object_id) {
          return Status::InvalidArgument(
              "aggregate inputs must be strictly ascending by object id");
        }
      }
      *assigned = submit.aggregate_seq;
      break;
  }
  tails_[submit.object] = *assigned;
  return Status::OK();
}

Response ProvenanceServer::ExecuteRead(const Request& request) {
  Response response;
  switch (request.op) {
    case NetOp::kQueryChain: {
      // Reads run against a pinned batch-boundary snapshot, not the live
      // store: the connection-ordering drain above guarantees this
      // client's own submits are committed (and therefore published),
      // while concurrent writers from other connections keep ingesting
      // without being blocked by — or racing — this traversal.
      provenance::StoreSnapshot snapshot = pipeline_->OpenSnapshot();
      auto records = snapshot.ChainRecords(request.object);
      if (records.empty()) {
        response.code = StatusCode::kNotFound;
        response.message =
            "no chain for object " + std::to_string(request.object);
        break;
      }
      Bytes body;
      AppendVarint64(&body, records.size());
      for (const auto* record : records) {
        AppendLengthPrefixed(&body, provenance::EncodeRecord(*record));
      }
      if (body.size() > options_.max_response_payload) {
        response.code = StatusCode::kOutOfRange;
        response.message = "chain exceeds the response size ceiling";
        break;
      }
      response.body = std::move(body);
      break;
    }
    case NetOp::kVerifyObject: {
      provenance::StoreSnapshot snapshot = pipeline_->OpenSnapshot();
      auto records = snapshot.ChainRecords(request.object);
      if (records.empty()) {
        response.code = StatusCode::kNotFound;
        response.message =
            "no chain for object " + std::to_string(request.object);
        break;
      }
      std::map<storage::ObjectId,
               std::vector<const provenance::ProvenanceRecord*>>
          chains;
      chains.emplace(request.object, std::move(records));
      provenance::VerificationReport report;
      provenance::VerifyRecordChains(*registry_, engine_, chains, &report,
                                     nullptr);
      VerifySummary summary;
      summary.records_checked = report.records_checked;
      summary.signatures_verified = report.signatures_verified;
      summary.issues = report.issues.size();
      summary.ok = report.ok();
      response.body = EncodeVerifySummary(summary);
      break;
    }
    case NetOp::kStats: {
      std::string json = observability::GlobalMetrics().SnapshotJson();
      response.body = Bytes(json.begin(), json.end());
      break;
    }
    case NetOp::kSubmitRecord:
      response.code = StatusCode::kInternal;
      response.message = "submit routed to the read path";
      break;
  }
  return response;
}

void ProvenanceServer::PushDone(std::vector<DoneItem> items) {
  if (items.empty()) return;
  {
    MutexLock lock(&mu_);
    for (auto& item : items) done_queue_.push_back(std::move(item));
  }
  wake_.Wake();
}

}  // namespace provdb::net
