#ifndef PROVDB_NET_ADMISSION_H_
#define PROVDB_NET_ADMISSION_H_

#include <cstdint>

#include "observability/metrics.h"

namespace provdb::net {

/// Admission control for the provenance server: a global in-flight byte
/// budget shared by every connection. A request is charged its frame size
/// when admitted; the charge is swapped for the response's size once the
/// response is built, and released when the response leaves the process
/// (flushed to the socket, or dropped with its session). Memory held on
/// behalf of remote peers is therefore bounded by `budget + one frame`
/// regardless of how many clients connect or how slowly they read.
///
/// Overload is shed, not queued: when a charge would exceed the budget,
/// Admit refuses and the server answers `kUnavailable` — a typed "retry
/// later", distinct from any client mistake. Not thread-safe by design:
/// every call happens on the server's poll thread (the single place
/// admission decisions are made), so the class needs no lock and a unit
/// test needs no server.
class AdmissionController {
 public:
  /// `budget_bytes` is the global in-flight ceiling. An oversized single
  /// request (> budget on an idle server) is still refused — the bound
  /// holds absolutely, so a budget below the frame ceiling must be paired
  /// with a matching `max_frame_payload`.
  AdmissionController(uint64_t budget_bytes,
                      observability::MetricsRegistry* metrics);

  /// Tries to admit a request of `bytes`; false = shed (kUnavailable).
  bool Admit(uint64_t bytes);

  /// Records a shed that happened outside the byte budget (e.g. a full
  /// per-connection pending queue) so `server.requests.shed` counts
  /// every kUnavailable the server returns.
  void NoteShed() { shed_->Increment(); }

  /// Re-charges an admitted request: `from` bytes released, `to` charged.
  /// Used when the request's charge becomes its response's. The swap is
  /// unconditional — a response may momentarily overshoot the budget, but
  /// by at most the difference on one in-flight request, and no *new*
  /// work is admitted while over.
  void Swap(uint64_t from, uint64_t to);

  /// Releases a charge (response flushed or dropped).
  void Release(uint64_t bytes);

  uint64_t in_flight_bytes() const { return in_flight_; }
  uint64_t budget_bytes() const { return budget_; }

 private:
  uint64_t budget_;
  uint64_t in_flight_ = 0;

  // docs/OBSERVABILITY.md `server.*` inventory.
  observability::Gauge* in_flight_gauge_;
  observability::Counter* shed_;
};

}  // namespace provdb::net

#endif  // PROVDB_NET_ADMISSION_H_
