#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace provdb::net {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::IoError(std::string(what) + ": " +
                         std::strerror(errno));
}

Status MakeNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

// -- Socket ------------------------------------------------------------

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::ConnectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  // Retry on EINTR: a signal during connect must not look like a refusal.
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) < 0) {
    if (errno == EINTR) continue;
    return ErrnoStatus("connect");
  }
  return sock;
}

Status Socket::SetNonBlocking() { return MakeNonBlocking(fd_); }

Status Socket::SetNoDelay() {
  int one = 1;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Result<IoResult> Socket::Read(size_t max, Bytes* out) {
  IoResult io;
  uint8_t buf[16 * 1024];
  size_t want = max < sizeof(buf) ? max : sizeof(buf);
  for (;;) {
    ssize_t n = ::read(fd_, buf, want);
    if (n > 0) {
      io.bytes = static_cast<size_t>(n);
      out->insert(out->end(), buf, buf + n);
      return io;
    }
    if (n == 0) {
      io.eof = true;
      return io;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      io.would_block = true;
      return io;
    }
    // A reset peer is normal connection teardown, not an I/O fault worth
    // a distinct error path: surface it as EOF so the session just ends.
    if (errno == ECONNRESET) {
      io.eof = true;
      return io;
    }
    return ErrnoStatus("read");
  }
}

Result<IoResult> Socket::Write(ByteView data) {
  IoResult io;
  for (;;) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) {
      io.bytes = static_cast<size_t>(n);
      return io;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      io.would_block = true;
      return io;
    }
    return ErrnoStatus("write");
  }
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// -- ListenSocket ------------------------------------------------------

ListenSocket::~ListenSocket() { Close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), bound_port_(other.bound_port_) {
  other.fd_ = -1;
  other.bound_port_ = 0;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    bound_port_ = other.bound_port_;
    other.fd_ = -1;
    other.bound_port_ = 0;
  }
  return *this;
}

Result<ListenSocket> ListenSocket::Listen(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  ListenSocket sock;
  sock.fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd, backlog) < 0) return ErrnoStatus("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoStatus("getsockname");
  }
  sock.bound_port_ = ntohs(addr.sin_port);
  PROVDB_RETURN_IF_ERROR(MakeNonBlocking(fd));
  return sock;
}

Result<Socket> ListenSocket::Accept(bool* would_block) {
  *would_block = false;
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      PROVDB_RETURN_IF_ERROR(MakeNonBlocking(fd));
      return sock;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return Socket();
    }
    return ErrnoStatus("accept");
  }
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// -- WakePipe ----------------------------------------------------------

WakePipe::~WakePipe() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0) ::close(write_fd_);
}

WakePipe::WakePipe(WakePipe&& other) noexcept
    : read_fd_(other.read_fd_), write_fd_(other.write_fd_) {
  other.read_fd_ = -1;
  other.write_fd_ = -1;
}

WakePipe& WakePipe::operator=(WakePipe&& other) noexcept {
  if (this != &other) {
    if (read_fd_ >= 0) ::close(read_fd_);
    if (write_fd_ >= 0) ::close(write_fd_);
    read_fd_ = other.read_fd_;
    write_fd_ = other.write_fd_;
    other.read_fd_ = -1;
    other.write_fd_ = -1;
  }
  return *this;
}

Result<WakePipe> WakePipe::Create() {
  int fds[2];
  if (::pipe(fds) < 0) return ErrnoStatus("pipe");
  WakePipe pipe(fds[0], fds[1]);
  PROVDB_RETURN_IF_ERROR(MakeNonBlocking(fds[0]));
  PROVDB_RETURN_IF_ERROR(MakeNonBlocking(fds[1]));
  return pipe;
}

void WakePipe::Wake() {
  uint8_t b = 1;
  // EAGAIN means the pipe already holds unconsumed wakes — the loop is
  // guaranteed to wake, so dropping this byte is correct.
  [[maybe_unused]] ssize_t n = ::write(write_fd_, &b, 1);
}

void WakePipe::DrainWakes() {
  uint8_t buf[256];
  while (::read(read_fd_, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace provdb::net
